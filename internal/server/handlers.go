package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/acyclic"
	"repro/internal/dynamic"
	"repro/internal/exec"
	"repro/internal/hypergraph"
	"repro/internal/jointree"
	"repro/internal/relation"
	"repro/internal/spectrum"
	"repro/internal/store"
)

// Request and response shapes. Schemas travel as the library's text format
// (one edge per line; see hypergraph.Parse), data as per-object attribute
// lists plus string rows.

type schemaRequest struct {
	Schema string `json:"schema"`
}

type tableJSON struct {
	Attrs []string   `json:"attrs"`
	Rows  [][]string `json:"rows"`
}

type evalRequest struct {
	Schema string      `json:"schema"`
	Tables []tableJSON `json:"tables"`
	Attrs  []string    `json:"attrs"`
}

type stepJSON struct {
	Target int `json:"target"`
	Source int `json:"source"`
}

// decode reads the JSON request body into v. Decoding failures map to 400
// "bad_json" — except a body-cap hit, which classify turns into 413.
func decode(r *http.Request, v any) error {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var maxBytes *http.MaxBytesError
		if errors.As(err, &maxBytes) {
			return maxBytes
		}
		return &errBadJSON{err: err}
	}
	return nil
}

// parseSchema turns request text into a hypergraph; *hypergraph.ErrParse
// surfaces as 400 "parse" with line and column.
func parseSchema(text string) (*hypergraph.Hypergraph, error) {
	h, _, err := hypergraph.Parse(text)
	return h, err
}

func (s *Server) handleAnalyze(r *http.Request) (any, error) {
	var req schemaRequest
	if err := decode(r, &req); err != nil {
		return nil, err
	}
	h, err := parseSchema(req.Schema)
	if err != nil {
		return nil, err
	}
	a := s.eng.AnalyzeCtx(r.Context(), h)
	acyclic, err := a.VerdictCtx(r.Context())
	if err != nil {
		return nil, err
	}
	return map[string]any{
		"acyclic": acyclic,
		"nodes":   h.NumNodes(),
		"edges":   h.NumEdges(),
	}, nil
}

func (s *Server) handleJoinTree(r *http.Request) (any, error) {
	var req schemaRequest
	if err := decode(r, &req); err != nil {
		return nil, err
	}
	h, err := parseSchema(req.Schema)
	if err != nil {
		return nil, err
	}
	a := s.eng.AnalyzeCtx(r.Context(), h)
	jt, err := a.JoinTreeCtx(r.Context())
	if err != nil {
		return nil, err
	}
	prog, err := a.FullReducerCtx(r.Context())
	if err != nil {
		return nil, err
	}
	return map[string]any{
		"parent":  jt.Parent,
		"roots":   jt.Roots(),
		"program": stepsJSON(prog),
	}, nil
}

func (s *Server) handleClassify(r *http.Request) (any, error) {
	var req schemaRequest
	if err := decode(r, &req); err != nil {
		return nil, err
	}
	h, err := parseSchema(req.Schema)
	if err != nil {
		return nil, err
	}
	// The polynomial spectrum testers poll ctx in-traversal, so the request
	// deadline is the admission control — no size cap needed.
	res, err := s.eng.AnalyzeCtx(r.Context(), h).SpectrumCtx(r.Context())
	if err != nil {
		return nil, err
	}
	return spectrumJSON(res), nil
}

// spectrumJSON renders a spectrum result for the wire: the four verdicts,
// the overall degree, and a summary of each certificate (the full
// elimination orders and step sequences stay server-side; counts are enough
// to tell which certificate backs a verdict).
func spectrumJSON(res *spectrum.Result) map[string]any {
	certs := map[string]any{}
	if res.Beta.Acyclic {
		certs["beta"] = map[string]any{"kind": "elimination-order", "nodes": len(res.Beta.Order)}
	} else {
		certs["beta"] = map[string]any{"kind": "nest-free-core", "nodes": len(res.Beta.Core)}
	}
	if res.Gamma.Acyclic {
		certs["gamma"] = map[string]any{"kind": "reduction-steps", "steps": len(res.Gamma.Steps)}
	} else {
		certs["gamma"] = map[string]any{
			"kind": "irreducible-core", "nodes": len(res.Gamma.CoreNodes), "edges": len(res.Gamma.CoreEdges),
		}
	}
	return map[string]any{
		"alpha": res.Alpha, "beta": res.Beta.Acyclic, "gamma": res.Gamma.Acyclic, "berge": res.Berge,
		"degree":       res.Degree.String(),
		"certificates": certs,
	}
}

// degreeString names the longest true prefix of a classification — the wire
// rendering for paths that hold a Classification without certificates.
func degreeString(c acyclic.Classification) string {
	d := spectrum.DegreeCyclic
	switch {
	case c.Alpha && c.Beta && c.Gamma && c.Berge:
		d = spectrum.DegreeBerge
	case c.Alpha && c.Beta && c.Gamma:
		d = spectrum.DegreeGamma
	case c.Alpha && c.Beta:
		d = spectrum.DegreeBeta
	case c.Alpha:
		d = spectrum.DegreeAlpha
	}
	return d.String()
}

// buildDatabase binds request tables to the schema. Both the per-table
// constructor and the binder reject shape mismatches with plain errors, so
// they are wrapped as 400 "bad_request" — the data, not the server, is wrong.
func buildDatabase(h *hypergraph.Hypergraph, tables []tableJSON) (*exec.Database, error) {
	rels := make([]*relation.Relation, len(tables))
	for i, t := range tables {
		rel, err := relation.New(t.Attrs, t.Rows...)
		if err != nil {
			return nil, &errBadRequest{err: fmt.Errorf("table %d: %w", i, err)}
		}
		rels[i] = rel
	}
	d, err := exec.FromRelations(h, rels)
	if err != nil {
		return nil, &errBadRequest{err: err}
	}
	return d, nil
}

func (s *Server) handleReduce(r *http.Request) (any, error) {
	var req evalRequest
	if err := decode(r, &req); err != nil {
		return nil, err
	}
	h, err := parseSchema(req.Schema)
	if err != nil {
		return nil, err
	}
	d, err := buildDatabase(h, req.Tables)
	if err != nil {
		return nil, err
	}
	res, err := s.eng.AnalyzeCtx(r.Context(), h).Reduce(r.Context(), d)
	if err != nil {
		return nil, err
	}
	return map[string]any{
		"rowsIn":  res.RowsIn,
		"rowsOut": res.RowsOut,
		"steps":   len(res.Steps),
	}, nil
}

func (s *Server) handleEval(r *http.Request) (any, error) {
	var req evalRequest
	if err := decode(r, &req); err != nil {
		return nil, err
	}
	h, err := parseSchema(req.Schema)
	if err != nil {
		return nil, err
	}
	// Validate the projection attributes against the schema here: the
	// executor reports unknown attributes with plain errors, but the server
	// contract is a typed 400 "unknown_node" carrying the name.
	if _, err := h.Set(req.Attrs...); err != nil {
		return nil, err
	}
	d, err := buildDatabase(h, req.Tables)
	if err != nil {
		return nil, err
	}
	res, err := s.eng.AnalyzeCtx(r.Context(), h).Eval(r.Context(), d, req.Attrs)
	if err != nil {
		return nil, err
	}
	return map[string]any{
		"attrs":    res.Out.Attrs(),
		"rows":     res.Out.ToRelation().Rows(),
		"joinRows": res.JoinRows,
		"rowsIn":   res.Reduce.RowsIn,
		"rowsOut":  res.Reduce.RowsOut,
	}, nil
}

// Workspace sessions. POST /v1/workspaces creates one (optionally seeded
// with a schema); the id routes edits and epoch-pinned queries to it. The
// registry is never pruned — sessions live until the process exits, which
// matches the tool's interactive-session lifetime; a production deployment
// would put an idle TTL here.

func (s *Server) handleWorkspaceCreate(r *http.Request) (any, error) {
	// An empty body is a valid "empty workspace" request; anything else
	// malformed is still a 400.
	var req schemaRequest
	if err := decode(r, &req); err != nil && !errors.Is(err, io.EOF) {
		return nil, err
	}
	var seed *hypergraph.Hypergraph
	if req.Schema != "" {
		h, err := parseSchema(req.Schema)
		if err != nil {
			return nil, err
		}
		seed = h
	}

	// Reserve the id first: durable sessions need it for their directory.
	s.mu.Lock()
	s.nextWS++
	id := fmt.Sprintf("ws-%d", s.nextWS)
	s.mu.Unlock()

	var ws *dynamic.Workspace
	var sess *store.Session
	if s.cfg.DataDir != "" {
		var err error
		sess, ws, err = store.Create(filepath.Join(s.cfg.DataDir, id), s.storeOptions(), s.wsOptions()...)
		if err != nil {
			return nil, fmt.Errorf("create session %s: %w", id, err)
		}
	} else {
		ws = dynamic.New(s.wsOptions()...)
	}
	if seed != nil {
		// Seed edges ride the normal edit path so durable sessions journal
		// them; an in-memory NewFrom would bypass the WAL.
		if err := seedWorkspace(ws, seed); err != nil {
			if sess != nil {
				sess.Close()
				os.RemoveAll(sess.Dir())
			}
			return nil, &errBadRequest{err: err}
		}
	}

	s.mu.Lock()
	s.spaces[id] = ws
	if sess != nil {
		s.sessions[id] = sess
	}
	s.mu.Unlock()
	return map[string]any{"id": id, "epoch": ws.Epoch()}, nil
}

// seedWorkspace replays a parsed schema into a fresh workspace edge by edge.
func seedWorkspace(ws *dynamic.Workspace, h *hypergraph.Hypergraph) error {
	for i := 0; i < h.NumEdges(); i++ {
		var names []string
		h.EdgeView(i).ForEach(func(id int) { names = append(names, h.NodeName(id)) })
		if _, err := ws.AddEdge(names...); err != nil {
			return fmt.Errorf("seed edge %d: %w", i, err)
		}
	}
	return nil
}

func (s *Server) workspace(r *http.Request) (*dynamic.Workspace, error) {
	id := r.PathValue("id")
	s.mu.Lock()
	ws := s.spaces[id]
	s.mu.Unlock()
	if ws == nil {
		return nil, fmt.Errorf("%w: %q", errUnknownWorkspace, id)
	}
	return ws, nil
}

func (s *Server) handleWorkspaceGet(r *http.Request) (any, error) {
	ws, err := s.workspace(r)
	if err != nil {
		return nil, err
	}
	a, err := ws.AnalysisCtx(r.Context())
	if err != nil {
		return nil, err
	}
	return map[string]any{
		"epoch":      a.Epoch(),
		"edges":      ws.NumEdges(),
		"nodes":      ws.NumNodes(),
		"components": ws.NumComponents(),
		"acyclic":    a.Verdict(),
	}, nil
}

type addEdgeRequest struct {
	Nodes []string `json:"nodes"`
}

func (s *Server) handleAddEdge(r *http.Request) (any, error) {
	ws, err := s.workspace(r)
	if err != nil {
		return nil, err
	}
	var req addEdgeRequest
	if err := decode(r, &req); err != nil {
		return nil, err
	}
	id, err := ws.AddEdge(req.Nodes...)
	if err != nil {
		// AddEdge only fails validation (no nodes, empty names): client error.
		return nil, &errBadRequest{err: err}
	}
	return map[string]any{"edge": id, "epoch": ws.Epoch()}, nil
}

func (s *Server) handleRemoveEdge(r *http.Request) (any, error) {
	ws, err := s.workspace(r)
	if err != nil {
		return nil, err
	}
	eid, err := strconv.Atoi(r.PathValue("edge"))
	if err != nil {
		return nil, &errBadRequest{err: fmt.Errorf("edge id %q is not a number", r.PathValue("edge"))}
	}
	if err := ws.RemoveEdge(eid); err != nil {
		return nil, err // *ErrUnknownEdge -> 404
	}
	return map[string]any{"epoch": ws.Epoch()}, nil
}

type renameRequest struct {
	Old string `json:"old"`
	New string `json:"new"`
}

func (s *Server) handleRename(r *http.Request) (any, error) {
	ws, err := s.workspace(r)
	if err != nil {
		return nil, err
	}
	var req renameRequest
	if err := decode(r, &req); err != nil {
		return nil, err
	}
	if req.New == "" {
		return nil, &errBadRequest{err: errors.New("rename target must be non-empty")}
	}
	if err := ws.RenameNode(req.Old, req.New); err != nil {
		return nil, err // *ErrUnknownNode -> 400, *ErrNodeExists -> 409
	}
	return map[string]any{"epoch": ws.Epoch()}, nil
}

type queryRequest struct {
	Op string `json:"op"`
	// Epoch, when set, pins the query to that workspace epoch: a workspace
	// that has been edited past it answers 409 "stale_epoch" with both
	// epochs instead of silently serving newer state.
	Epoch *uint64 `json:"epoch,omitempty"`
}

// cacheableOp reports whether a query op's JSON body may be served from the
// epoch-keyed response cache: ops whose body is a pure function of the
// workspace state at one epoch and costs real marshalling work. "verdict"
// is a two-field body (cheaper to build than to look up); "snapshot" bodies
// can be arbitrarily large relative to their hit rate.
func cacheableOp(op string) bool {
	switch op {
	case "jointree", "fullreducer", "classification":
		return true
	}
	return false
}

func (s *Server) handleQuery(r *http.Request) (any, error) {
	ws, err := s.workspace(r)
	if err != nil {
		return nil, err
	}
	var req queryRequest
	if err := decode(r, &req); err != nil {
		return nil, err
	}
	a, err := ws.AnalysisCtx(r.Context())
	if err != nil {
		return nil, err
	}
	if req.Epoch != nil && *req.Epoch != a.Epoch() {
		return nil, &dynamic.ErrStaleEpoch{Handle: *req.Epoch, Current: a.Epoch()}
	}

	// Epoch-keyed body cache: the key pins the workspace id, the epoch the
	// analysis handle answered at, and the op — an edit bumps the epoch, so
	// a hit can never serve stale state.
	var cacheKey string
	if s.respCache != nil && cacheableOp(req.Op) {
		cacheKey = fmt.Sprintf("%s@%d:%s", r.PathValue("id"), a.Epoch(), req.Op)
		if body, ok := s.respCache.get(cacheKey); ok {
			return body, nil
		}
	}

	res, err := s.queryBody(r, a, req.Op)
	if err != nil || cacheKey == "" {
		return res, err
	}
	body, merr := json.Marshal(res)
	if merr != nil {
		return res, nil // uncacheable body; serve it anyway
	}
	s.respCache.put(cacheKey, body)
	return json.RawMessage(body), nil
}

// queryBody builds the response body for one query op against a settled
// analysis handle.
func (s *Server) queryBody(r *http.Request, a *dynamic.Analysis, op string) (any, error) {
	switch op {
	case "verdict":
		return map[string]any{"epoch": a.Epoch(), "acyclic": a.Verdict()}, nil
	case "jointree":
		jt, err := a.JoinTree()
		if err != nil {
			return nil, err
		}
		return map[string]any{"epoch": a.Epoch(), "parent": jt.Parent, "roots": jt.Roots()}, nil
	case "fullreducer":
		prog, err := a.FullReducer()
		if err != nil {
			return nil, err
		}
		return map[string]any{"epoch": a.Epoch(), "program": stepsJSON(prog)}, nil
	case "classification":
		c, err := a.ClassificationCtx(r.Context())
		if err != nil {
			return nil, err
		}
		return map[string]any{
			"epoch": a.Epoch(),
			"alpha": c.Alpha, "beta": c.Beta, "gamma": c.Gamma, "berge": c.Berge,
			"degree": degreeString(c),
		}, nil
	case "snapshot":
		h, err := a.Snapshot()
		if err != nil {
			return nil, err
		}
		edges := make([][]string, h.NumEdges())
		for i := range edges {
			var names []string
			h.EdgeView(i).ForEach(func(id int) { names = append(names, h.NodeName(id)) })
			edges[i] = names
		}
		return map[string]any{"epoch": a.Epoch(), "edges": edges}, nil
	}
	return nil, &errBadRequest{err: fmt.Errorf("unknown op %q", op)}
}

// handleWatch is the epoch long-poll: GET /v1/ws/{id}/watch?after=N parks
// until the workspace's epoch exceeds N (default: its epoch at arrival) or
// the request deadline expires. Both outcomes are 200s — a timeout answers
// {"changed": false} so pollers distinguish "nothing happened" from errors
// and immediately re-arm with the same cursor.
func (s *Server) handleWatch(r *http.Request) (any, error) {
	ws, err := s.workspace(r)
	if err != nil {
		return nil, err
	}
	after := ws.Epoch()
	if q := r.URL.Query().Get("after"); q != "" {
		n, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			return nil, &errBadRequest{err: fmt.Errorf("after=%q is not an epoch", q)}
		}
		after = n
	}
	select {
	case <-ws.EpochChanged(after):
		return map[string]any{"changed": true, "epoch": ws.Epoch()}, nil
	case <-r.Context().Done():
		// Deadline expiry is the long-poll's normal idle outcome, not a 408.
		return map[string]any{"changed": false, "epoch": ws.Epoch()}, nil
	}
}

func stepsJSON(prog []jointree.SemijoinStep) []stepJSON {
	out := make([]stepJSON, len(prog))
	for i, s := range prog {
		out[i] = stepJSON{Target: s.Target, Source: s.Source}
	}
	return out
}
