package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"repro/internal/acyclic"
	"repro/internal/dynamic"
	"repro/internal/exec"
	"repro/internal/hypergraph"
	"repro/internal/jointree"
	"repro/internal/relation"
	"repro/internal/spectrum"
)

// Request and response shapes. Schemas travel as the library's text format
// (one edge per line; see hypergraph.Parse), data as per-object attribute
// lists plus string rows.

type schemaRequest struct {
	Schema string `json:"schema"`
}

type tableJSON struct {
	Attrs []string   `json:"attrs"`
	Rows  [][]string `json:"rows"`
}

type evalRequest struct {
	Schema string      `json:"schema"`
	Tables []tableJSON `json:"tables"`
	Attrs  []string    `json:"attrs"`
}

type stepJSON struct {
	Target int `json:"target"`
	Source int `json:"source"`
}

// decode reads the JSON request body into v. Decoding failures map to 400
// "bad_json" — except a body-cap hit, which classify turns into 413.
func decode(r *http.Request, v any) error {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var maxBytes *http.MaxBytesError
		if errors.As(err, &maxBytes) {
			return maxBytes
		}
		return &errBadJSON{err: err}
	}
	return nil
}

// parseSchema turns request text into a hypergraph; *hypergraph.ErrParse
// surfaces as 400 "parse" with line and column.
func parseSchema(text string) (*hypergraph.Hypergraph, error) {
	h, _, err := hypergraph.Parse(text)
	return h, err
}

func (s *Server) handleAnalyze(r *http.Request) (any, error) {
	var req schemaRequest
	if err := decode(r, &req); err != nil {
		return nil, err
	}
	h, err := parseSchema(req.Schema)
	if err != nil {
		return nil, err
	}
	a := s.eng.AnalyzeCtx(r.Context(), h)
	acyclic, err := a.VerdictCtx(r.Context())
	if err != nil {
		return nil, err
	}
	return map[string]any{
		"acyclic": acyclic,
		"nodes":   h.NumNodes(),
		"edges":   h.NumEdges(),
	}, nil
}

func (s *Server) handleJoinTree(r *http.Request) (any, error) {
	var req schemaRequest
	if err := decode(r, &req); err != nil {
		return nil, err
	}
	h, err := parseSchema(req.Schema)
	if err != nil {
		return nil, err
	}
	a := s.eng.AnalyzeCtx(r.Context(), h)
	jt, err := a.JoinTreeCtx(r.Context())
	if err != nil {
		return nil, err
	}
	prog, err := a.FullReducerCtx(r.Context())
	if err != nil {
		return nil, err
	}
	return map[string]any{
		"parent":  jt.Parent,
		"roots":   jt.Roots(),
		"program": stepsJSON(prog),
	}, nil
}

func (s *Server) handleClassify(r *http.Request) (any, error) {
	var req schemaRequest
	if err := decode(r, &req); err != nil {
		return nil, err
	}
	h, err := parseSchema(req.Schema)
	if err != nil {
		return nil, err
	}
	// The polynomial spectrum testers poll ctx in-traversal, so the request
	// deadline is the admission control — no size cap needed.
	res, err := s.eng.AnalyzeCtx(r.Context(), h).SpectrumCtx(r.Context())
	if err != nil {
		return nil, err
	}
	return spectrumJSON(res), nil
}

// spectrumJSON renders a spectrum result for the wire: the four verdicts,
// the overall degree, and a summary of each certificate (the full
// elimination orders and step sequences stay server-side; counts are enough
// to tell which certificate backs a verdict).
func spectrumJSON(res *spectrum.Result) map[string]any {
	certs := map[string]any{}
	if res.Beta.Acyclic {
		certs["beta"] = map[string]any{"kind": "elimination-order", "nodes": len(res.Beta.Order)}
	} else {
		certs["beta"] = map[string]any{"kind": "nest-free-core", "nodes": len(res.Beta.Core)}
	}
	if res.Gamma.Acyclic {
		certs["gamma"] = map[string]any{"kind": "reduction-steps", "steps": len(res.Gamma.Steps)}
	} else {
		certs["gamma"] = map[string]any{
			"kind": "irreducible-core", "nodes": len(res.Gamma.CoreNodes), "edges": len(res.Gamma.CoreEdges),
		}
	}
	return map[string]any{
		"alpha": res.Alpha, "beta": res.Beta.Acyclic, "gamma": res.Gamma.Acyclic, "berge": res.Berge,
		"degree":       res.Degree.String(),
		"certificates": certs,
	}
}

// degreeString names the longest true prefix of a classification — the wire
// rendering for paths that hold a Classification without certificates.
func degreeString(c acyclic.Classification) string {
	d := spectrum.DegreeCyclic
	switch {
	case c.Alpha && c.Beta && c.Gamma && c.Berge:
		d = spectrum.DegreeBerge
	case c.Alpha && c.Beta && c.Gamma:
		d = spectrum.DegreeGamma
	case c.Alpha && c.Beta:
		d = spectrum.DegreeBeta
	case c.Alpha:
		d = spectrum.DegreeAlpha
	}
	return d.String()
}

// buildDatabase binds request tables to the schema. Both the per-table
// constructor and the binder reject shape mismatches with plain errors, so
// they are wrapped as 400 "bad_request" — the data, not the server, is wrong.
func buildDatabase(h *hypergraph.Hypergraph, tables []tableJSON) (*exec.Database, error) {
	rels := make([]*relation.Relation, len(tables))
	for i, t := range tables {
		rel, err := relation.New(t.Attrs, t.Rows...)
		if err != nil {
			return nil, &errBadRequest{err: fmt.Errorf("table %d: %w", i, err)}
		}
		rels[i] = rel
	}
	d, err := exec.FromRelations(h, rels)
	if err != nil {
		return nil, &errBadRequest{err: err}
	}
	return d, nil
}

func (s *Server) handleReduce(r *http.Request) (any, error) {
	var req evalRequest
	if err := decode(r, &req); err != nil {
		return nil, err
	}
	h, err := parseSchema(req.Schema)
	if err != nil {
		return nil, err
	}
	d, err := buildDatabase(h, req.Tables)
	if err != nil {
		return nil, err
	}
	res, err := s.eng.AnalyzeCtx(r.Context(), h).Reduce(r.Context(), d)
	if err != nil {
		return nil, err
	}
	return map[string]any{
		"rowsIn":  res.RowsIn,
		"rowsOut": res.RowsOut,
		"steps":   len(res.Steps),
	}, nil
}

func (s *Server) handleEval(r *http.Request) (any, error) {
	var req evalRequest
	if err := decode(r, &req); err != nil {
		return nil, err
	}
	h, err := parseSchema(req.Schema)
	if err != nil {
		return nil, err
	}
	// Validate the projection attributes against the schema here: the
	// executor reports unknown attributes with plain errors, but the server
	// contract is a typed 400 "unknown_node" carrying the name.
	if _, err := h.Set(req.Attrs...); err != nil {
		return nil, err
	}
	d, err := buildDatabase(h, req.Tables)
	if err != nil {
		return nil, err
	}
	res, err := s.eng.AnalyzeCtx(r.Context(), h).Eval(r.Context(), d, req.Attrs)
	if err != nil {
		return nil, err
	}
	return map[string]any{
		"attrs":    res.Out.Attrs(),
		"rows":     res.Out.ToRelation().Rows(),
		"joinRows": res.JoinRows,
		"rowsIn":   res.Reduce.RowsIn,
		"rowsOut":  res.Reduce.RowsOut,
	}, nil
}

// Workspace sessions. POST /v1/workspaces creates one (optionally seeded
// with a schema); the id routes edits and epoch-pinned queries to it. The
// registry is never pruned — sessions live until the process exits, which
// matches the tool's interactive-session lifetime; a production deployment
// would put an idle TTL here.

func (s *Server) handleWorkspaceCreate(r *http.Request) (any, error) {
	// An empty body is a valid "empty workspace" request; anything else
	// malformed is still a 400.
	var req schemaRequest
	if err := decode(r, &req); err != nil && !errors.Is(err, io.EOF) {
		return nil, err
	}
	opts := []dynamic.Option{dynamic.WithEngine(s.eng), dynamic.WithParallelism(s.cfg.Workers)}
	var ws *dynamic.Workspace
	if req.Schema != "" {
		h, err := parseSchema(req.Schema)
		if err != nil {
			return nil, err
		}
		ws, err = dynamic.NewFrom(h, opts...)
		if err != nil {
			return nil, &errBadRequest{err: err}
		}
	} else {
		ws = dynamic.New(opts...)
	}
	s.mu.Lock()
	s.nextWS++
	id := fmt.Sprintf("ws-%d", s.nextWS)
	s.spaces[id] = ws
	s.mu.Unlock()
	return map[string]any{"id": id, "epoch": ws.Epoch()}, nil
}

func (s *Server) workspace(r *http.Request) (*dynamic.Workspace, error) {
	id := r.PathValue("id")
	s.mu.Lock()
	ws := s.spaces[id]
	s.mu.Unlock()
	if ws == nil {
		return nil, fmt.Errorf("%w: %q", errUnknownWorkspace, id)
	}
	return ws, nil
}

func (s *Server) handleWorkspaceGet(r *http.Request) (any, error) {
	ws, err := s.workspace(r)
	if err != nil {
		return nil, err
	}
	a, err := ws.AnalysisCtx(r.Context())
	if err != nil {
		return nil, err
	}
	return map[string]any{
		"epoch":      a.Epoch(),
		"edges":      ws.NumEdges(),
		"nodes":      ws.NumNodes(),
		"components": ws.NumComponents(),
		"acyclic":    a.Verdict(),
	}, nil
}

type addEdgeRequest struct {
	Nodes []string `json:"nodes"`
}

func (s *Server) handleAddEdge(r *http.Request) (any, error) {
	ws, err := s.workspace(r)
	if err != nil {
		return nil, err
	}
	var req addEdgeRequest
	if err := decode(r, &req); err != nil {
		return nil, err
	}
	id, err := ws.AddEdge(req.Nodes...)
	if err != nil {
		// AddEdge only fails validation (no nodes, empty names): client error.
		return nil, &errBadRequest{err: err}
	}
	return map[string]any{"edge": id, "epoch": ws.Epoch()}, nil
}

func (s *Server) handleRemoveEdge(r *http.Request) (any, error) {
	ws, err := s.workspace(r)
	if err != nil {
		return nil, err
	}
	eid, err := strconv.Atoi(r.PathValue("edge"))
	if err != nil {
		return nil, &errBadRequest{err: fmt.Errorf("edge id %q is not a number", r.PathValue("edge"))}
	}
	if err := ws.RemoveEdge(eid); err != nil {
		return nil, err // *ErrUnknownEdge -> 404
	}
	return map[string]any{"epoch": ws.Epoch()}, nil
}

type renameRequest struct {
	Old string `json:"old"`
	New string `json:"new"`
}

func (s *Server) handleRename(r *http.Request) (any, error) {
	ws, err := s.workspace(r)
	if err != nil {
		return nil, err
	}
	var req renameRequest
	if err := decode(r, &req); err != nil {
		return nil, err
	}
	if req.New == "" {
		return nil, &errBadRequest{err: errors.New("rename target must be non-empty")}
	}
	if err := ws.RenameNode(req.Old, req.New); err != nil {
		return nil, err // *ErrUnknownNode -> 400, *ErrNodeExists -> 409
	}
	return map[string]any{"epoch": ws.Epoch()}, nil
}

type queryRequest struct {
	Op string `json:"op"`
	// Epoch, when set, pins the query to that workspace epoch: a workspace
	// that has been edited past it answers 409 "stale_epoch" with both
	// epochs instead of silently serving newer state.
	Epoch *uint64 `json:"epoch,omitempty"`
}

func (s *Server) handleQuery(r *http.Request) (any, error) {
	ws, err := s.workspace(r)
	if err != nil {
		return nil, err
	}
	var req queryRequest
	if err := decode(r, &req); err != nil {
		return nil, err
	}
	a, err := ws.AnalysisCtx(r.Context())
	if err != nil {
		return nil, err
	}
	if req.Epoch != nil && *req.Epoch != a.Epoch() {
		return nil, &dynamic.ErrStaleEpoch{Handle: *req.Epoch, Current: a.Epoch()}
	}
	switch req.Op {
	case "verdict":
		return map[string]any{"epoch": a.Epoch(), "acyclic": a.Verdict()}, nil
	case "jointree":
		jt, err := a.JoinTree()
		if err != nil {
			return nil, err
		}
		return map[string]any{"epoch": a.Epoch(), "parent": jt.Parent, "roots": jt.Roots()}, nil
	case "fullreducer":
		prog, err := a.FullReducer()
		if err != nil {
			return nil, err
		}
		return map[string]any{"epoch": a.Epoch(), "program": stepsJSON(prog)}, nil
	case "classification":
		c, err := a.ClassificationCtx(r.Context())
		if err != nil {
			return nil, err
		}
		return map[string]any{
			"epoch": a.Epoch(),
			"alpha": c.Alpha, "beta": c.Beta, "gamma": c.Gamma, "berge": c.Berge,
			"degree": degreeString(c),
		}, nil
	case "snapshot":
		h, err := a.Snapshot()
		if err != nil {
			return nil, err
		}
		edges := make([][]string, h.NumEdges())
		for i := range edges {
			var names []string
			h.EdgeView(i).ForEach(func(id int) { names = append(names, h.NodeName(id)) })
			edges[i] = names
		}
		return map[string]any{"epoch": a.Epoch(), "edges": edges}, nil
	}
	return nil, &errBadRequest{err: fmt.Errorf("unknown op %q", req.Op)}
}

func stepsJSON(prog []jointree.SemijoinStep) []stepJSON {
	out := make([]stepJSON, len(prog))
	for i, s := range prog {
		out[i] = stepJSON{Target: s.Target, Source: s.Source}
	}
	return out
}
