package server

import (
	"sync"
	"time"
)

// incidentRingCap bounds the in-memory incident history: the ring keeps the
// most recent incidents and overwrites the oldest, so a panic storm cannot
// grow server memory. Incident ids stay globally unique (the counter never
// resets) even after the ring wraps.
const incidentRingCap = 64

// Incident is one recorded failure that minted an incident id: a recovered
// panic or an error the taxonomy could not classify. The id in the 500
// response body correlates with this record, so an operator can go from a
// client report to the stack without grepping logs.
type Incident struct {
	ID      string    `json:"id"`
	Time    time.Time `json:"time"`
	Method  string    `json:"method"`
	Path    string    `json:"path"`
	Tenant  string    `json:"tenant"`
	Summary string    `json:"summary"`         // panic value or error text
	Stack   string    `json:"stack,omitempty"` // goroutine stack; panics only
}

// incidentRing is the bounded, concurrency-safe record store behind
// /statsz's incidents section.
type incidentRing struct {
	mu   sync.Mutex
	buf  [incidentRingCap]Incident
	next int // total records ever; buf index is next % cap
}

func (r *incidentRing) record(inc Incident) {
	r.mu.Lock()
	r.buf[r.next%incidentRingCap] = inc
	r.next++
	r.mu.Unlock()
}

// snapshot returns the retained incidents, newest first.
func (r *incidentRing) snapshot() []Incident {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if n > incidentRingCap {
		n = incidentRingCap
	}
	out := make([]Incident, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, r.buf[((r.next-1-i)%incidentRingCap+incidentRingCap)%incidentRingCap])
	}
	return out
}

// Incidents returns the retained incident records, newest first — the same
// view /statsz serves.
func (s *Server) Incidents() []Incident {
	return s.ring.snapshot()
}
