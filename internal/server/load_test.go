package server

// The mixed edit/query multi-tenant load profile behind BENCH_serve.json:
// four tenants hammer analyze / jointree / eval / workspace-edit traffic
// against a deliberately small in-flight budget, so the run exercises
// admission control (sheds), the memo plane (warm analyze), and the
// workspace sessions concurrently. The test asserts the robustness
// invariants (only documented statuses, coherent counters); the latency and
// shed-rate numbers it logs are what BENCH_serve.json records.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
)

func TestMixedTenantLoadProfile(t *testing.T) {
	defer fault.Reset()
	fault.Reset()
	s, ts := newTestServer(t, Config{
		Workers:     4,
		MaxInFlight: 8, // small on purpose: the profile must show shedding
		TenantRate:  100000,
		TenantBurst: 100000,
	}, nil)

	const (
		tenants    = 4
		perTenant  = 150
		concurrent = 24
	)

	// Per-tenant workspace sessions for the edit mix.
	wsIDs := make([]string, tenants)
	for i := range wsIDs {
		resp, body := do(t, "POST", ts.URL+"/v1/workspaces", schemaBody(fig1Text), nil)
		if resp.StatusCode != 200 {
			t.Fatalf("workspace create: %d %s", resp.StatusCode, body)
		}
		var c struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(body, &c); err != nil {
			t.Fatal(err)
		}
		wsIDs[i] = c.ID
	}

	type result struct {
		status  int
		latency time.Duration
	}
	results := make([]result, tenants*perTenant)
	jobs := make(chan int, len(results))
	for i := range results {
		jobs <- i
	}
	close(jobs)

	evalReq := evalBody(64)
	var wg sync.WaitGroup
	for w := 0; w < concurrent; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				tenant := i % tenants
				hdr := map[string]string{"X-Tenant": fmt.Sprintf("tenant-%d", tenant)}
				start := time.Now()
				var resp *http.Response
				switch i % 5 {
				case 0, 1: // warm memoized analysis dominates real traffic
					resp, _ = do(t, "POST", ts.URL+"/v1/analyze", schemaBody(fig1Text), hdr)
				case 2:
					resp, _ = do(t, "POST", ts.URL+"/v1/jointree", schemaBody(fig1Text), hdr)
				case 3:
					resp, _ = do(t, "POST", ts.URL+"/v1/eval", evalReq, hdr)
				default: // workspace edit + epoch query
					wsURL := ts.URL + "/v1/workspaces/" + wsIDs[tenant]
					edge := fmt.Sprintf(`{"nodes":["T%dX%d","T%dY%d"]}`, tenant, i, tenant, i)
					r1, _ := do(t, "POST", wsURL+"/edges", edge, hdr)
					if r1.StatusCode == 200 {
						resp, _ = do(t, "POST", wsURL+"/query", `{"op":"verdict"}`, hdr)
					} else {
						resp = r1
					}
				}
				results[i] = result{status: resp.StatusCode, latency: time.Since(start)}
			}
		}()
	}
	wg.Wait()

	var okLat []time.Duration
	shed := 0
	for i, r := range results {
		switch r.status {
		case 200:
			okLat = append(okLat, r.latency)
		case 429:
			shed++
		default:
			t.Errorf("request %d: undocumented status %d under load", i, r.status)
		}
	}
	if len(okLat) == 0 {
		t.Fatal("no requests succeeded")
	}
	sort.Slice(okLat, func(a, b int) bool { return okLat[a] < okLat[b] })
	pct := func(p float64) time.Duration {
		return okLat[int(p*float64(len(okLat)-1))]
	}
	st := s.Stats()
	if st.Panics != 0 || st.Internal != 0 {
		t.Fatalf("5xx under clean load: %+v", st)
	}
	t.Logf("steady phase: %d requests, %d ok, %d shed, p50 %v, p99 %v, max %v",
		len(results), len(okLat), shed, pct(0.50), pct(0.99), okLat[len(okLat)-1])

	// Overload burst: every admitted request now takes 25ms of injected
	// service time, and a 100-wide burst lands on the 8-slot budget — the
	// server must shed the excess with 429s, never queue unboundedly, never
	// fail any other way.
	fault.Activate(fault.ServerHandle, fault.Injection{
		Kind: fault.KindDelay, Delay: 25 * time.Millisecond,
	})
	const burst = 100
	burstCodes := make([]int, burst)
	var bwg sync.WaitGroup
	for i := 0; i < burst; i++ {
		bwg.Add(1)
		go func(i int) {
			defer bwg.Done()
			resp, _ := do(t, "POST", ts.URL+"/v1/analyze", schemaBody(fig1Text),
				map[string]string{"X-Tenant": fmt.Sprintf("tenant-%d", i%tenants)})
			burstCodes[i] = resp.StatusCode
		}(i)
	}
	bwg.Wait()
	fault.Reset()
	burstOK, burstShed := 0, 0
	for i, c := range burstCodes {
		switch c {
		case 200:
			burstOK++
		case 429:
			burstShed++
		default:
			t.Errorf("burst request %d: undocumented status %d", i, c)
		}
	}
	if burstShed == 0 {
		t.Fatal("overload burst shed nothing with 100 requests on 8 slots")
	}
	shedRate := float64(burstShed) / float64(burst)
	t.Logf("overload burst: %d requests, %d ok, %d shed (%.1f%% shed rate)",
		burst, burstOK, burstShed, 100*shedRate)
	st = s.Stats()
	if st.Panics != 0 || st.Internal != 0 {
		t.Fatalf("5xx during burst: %+v", st)
	}
	t.Logf("server stats: %+v", st)
}
