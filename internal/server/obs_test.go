package server

// The observability suite: /metricsz exposition, /tracez span trees that
// attribute a request's time across every layer, incident↔trace
// correlation under injected panics, and the consistency of /statsz
// snapshots under concurrent load (run with -race).

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/hypergraph"
	"repro/internal/obs"
	"repro/internal/relation"
)

// spanNode mirrors obs.SpanJSON for decoding /tracez payloads.
type spanNode struct {
	Name     string         `json:"name"`
	Attrs    map[string]any `json:"attrs"`
	Children []*spanNode    `json:"children"`
}

type tracezPayload struct {
	Enabled  bool `json:"enabled"`
	Seen     uint64
	Retained uint64
	Traces   []struct {
		Root    *spanNode `json:"root"`
		Spans   int       `json:"spans"`
		Dropped int       `json:"dropped"`
	} `json:"traces"`
}

func getTracez(t *testing.T, url string) tracezPayload {
	t.Helper()
	resp, body := do(t, "GET", url+"/tracez", "", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("/tracez: %d %s", resp.StatusCode, body)
	}
	var tz tracezPayload
	if err := json.Unmarshal(body, &tz); err != nil {
		t.Fatalf("/tracez payload: %v (body %s)", err, body)
	}
	return tz
}

// walk visits every span in the tree.
func walk(n *spanNode, f func(*spanNode)) {
	if n == nil {
		return
	}
	f(n)
	for _, c := range n.Children {
		walk(c, f)
	}
}

// attrInt reads an integer attribute out of decoded JSON (numbers arrive
// as float64).
func attrInt(t *testing.T, n *spanNode, key string) int64 {
	t.Helper()
	v, ok := n.Attrs[key].(float64)
	if !ok {
		t.Fatalf("span %q: attr %q = %v (%T), want a number", n.Name, key, n.Attrs[key], n.Attrs[key])
	}
	return int64(v)
}

// TestTracezEvalSpanTree is the end-to-end attribution check: one /v1/eval
// request under tracing yields a /tracez span tree whose layers — server
// admission, engine memo, analysis facet, executor eval/reduce and every
// semijoin step — carry row counts identical to the step stats an
// independent run of the same evaluation reports.
func TestTracezEvalSpanTree(t *testing.T) {
	t.Cleanup(obs.Disable)
	_, ts := newTestServer(t, Config{Workers: 1, Trace: true, SlowTraceThreshold: -1}, nil)

	resp, body := do(t, "POST", ts.URL+"/v1/eval", evalBody(64), nil)
	if resp.StatusCode != 200 {
		t.Fatalf("eval: %d %s", resp.StatusCode, body)
	}
	var evalResp struct {
		RowsIn  int `json:"rowsIn"`
		RowsOut int `json:"rowsOut"`
	}
	if err := json.Unmarshal(body, &evalResp); err != nil {
		t.Fatal(err)
	}

	// The same evaluation through the library directly — the reference the
	// span attributes must match byte for byte.
	h, _, err := hypergraph.Parse("A B\nB C\nC D")
	if err != nil {
		t.Fatal(err)
	}
	mk := func(a, b string) *relation.Relation {
		rows := make([][]string, 64)
		for i := range rows {
			rows[i] = []string{fmt.Sprint(i), fmt.Sprint(i)}
		}
		r, err := relation.New([]string{a, b}, rows...)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	d, err := exec.FromRelations(h, []*relation.Relation{mk("A", "B"), mk("B", "C"), mk("C", "D")})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := engine.New(engine.WithWorkers(1)).Analyze(h).Eval(context.Background(), d, []string{"A", "D"})
	if err != nil {
		t.Fatal(err)
	}

	tz := getTracez(t, ts.URL)
	if !tz.Enabled {
		t.Fatal("/tracez reports tracing disabled")
	}
	var root *spanNode
	for _, tr := range tz.Traces {
		if tr.Root != nil && tr.Root.Attrs["path"] == "/v1/eval" {
			root = tr.Root
			break
		}
	}
	if root == nil {
		t.Fatalf("no retained trace for /v1/eval among %d traces", len(tz.Traces))
	}
	if root.Name != "server.request" {
		t.Fatalf("root span = %q, want server.request", root.Name)
	}
	if got := attrInt(t, root, "status"); got != 200 {
		t.Fatalf("root status attr = %d, want 200", got)
	}
	if root.Attrs["tenant"] != "anon" {
		t.Fatalf("root tenant attr = %v, want anon", root.Attrs["tenant"])
	}

	byName := map[string][]*spanNode{}
	facets := 0
	walk(root, func(n *spanNode) {
		byName[n.Name] = append(byName[n.Name], n)
		if strings.HasPrefix(n.Name, "facet.") {
			facets++
		}
	})
	for _, name := range []string{"engine.memo", "exec.eval", "exec.reduce"} {
		if len(byName[name]) == 0 {
			t.Fatalf("trace has no %q span (have %v)", name, keys(byName))
		}
	}
	if facets == 0 {
		t.Fatalf("trace has no facet.* span (have %v)", keys(byName))
	}
	// SetBool records 0/1 in the int slot.
	if got := attrInt(t, byName["engine.memo"][0], "hit"); got != 0 {
		t.Fatalf("engine.memo hit attr = %d, want 0 on a cold memo", got)
	}

	red := byName["exec.reduce"][0]
	if in, out := attrInt(t, red, "rowsIn"), attrInt(t, red, "rowsOut"); in != int64(ref.Reduce.RowsIn) || out != int64(ref.Reduce.RowsOut) {
		t.Fatalf("exec.reduce rows = %d->%d, reference run says %d->%d", in, out, ref.Reduce.RowsIn, ref.Reduce.RowsOut)
	}
	if evalResp.RowsIn != ref.Reduce.RowsIn || evalResp.RowsOut != ref.Reduce.RowsOut {
		t.Fatalf("response rows = %d->%d, reference run says %d->%d",
			evalResp.RowsIn, evalResp.RowsOut, ref.Reduce.RowsIn, ref.Reduce.RowsOut)
	}

	steps := byName["exec.step"]
	if len(steps) != len(ref.Reduce.Steps) {
		t.Fatalf("trace has %d exec.step spans, reference run has %d steps", len(steps), len(ref.Reduce.Steps))
	}
	// Children are ordered by span id — creation order — which on the
	// serial path is program order, so the spans line up index by index.
	for i, sp := range steps {
		want := ref.Reduce.Steps[i]
		if attrInt(t, sp, "target") != int64(want.Step.Target) ||
			attrInt(t, sp, "source") != int64(want.Step.Source) ||
			attrInt(t, sp, "rowsIn") != int64(want.RowsIn) ||
			attrInt(t, sp, "rowsOut") != int64(want.RowsOut) {
			t.Fatalf("exec.step[%d] attrs %v, reference step %+v", i, sp.Attrs, want)
		}
	}
}

func keys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestIncidentTraceCorrelation arms a panic at each instrumented layer and
// proves the 500's incident id is stamped on the force-retained trace: the
// /tracez entry for the failed request is findable by the id the client
// received, whichever layer blew up.
func TestIncidentTraceCorrelation(t *testing.T) {
	cases := []struct {
		name string
		req  func(t *testing.T, url string) string // arm, request, return incident id
	}{
		{"server.handle", func(t *testing.T, url string) string {
			fault.Activate(fault.ServerHandle, fault.Injection{Kind: fault.KindPanic, Panic: "handler corrupted", Count: 1})
			resp, body := do(t, "POST", url+"/v1/analyze", schemaBody(fig1Text), nil)
			return assertTyped(t, resp, body, 500, CodeInternal).Incident
		}},
		{"engine.analyze", func(t *testing.T, url string) string {
			fault.Activate(fault.EngineAnalyze, fault.Injection{Kind: fault.KindPanic, Panic: "memo corrupted", Count: 1})
			resp, body := do(t, "POST", url+"/v1/analyze", schemaBody(fig1Text), nil)
			return assertTyped(t, resp, body, 500, CodeInternal).Incident
		}},
		{"exec.reduce.step", func(t *testing.T, url string) string {
			fault.Activate(fault.ExecReduceStep, fault.Injection{Kind: fault.KindPanic, Panic: "kernel corrupted", After: 1, Count: 1})
			resp, body := do(t, "POST", url+"/v1/reduce", evalBody(32), nil)
			return assertTyped(t, resp, body, 500, CodeInternal).Incident
		}},
		{"exec.eval.join", func(t *testing.T, url string) string {
			fault.Activate(fault.ExecEvalJoin, fault.Injection{Kind: fault.KindPanic, Panic: "join corrupted", Count: 1})
			resp, body := do(t, "POST", url+"/v1/eval", evalBody(16), nil)
			return assertTyped(t, resp, body, 500, CodeInternal).Incident
		}},
		{"dynamic.settle", func(t *testing.T, url string) string {
			resp, body := do(t, "POST", url+"/v1/workspaces", "", nil)
			if resp.StatusCode != 200 {
				t.Fatalf("create: %d %s", resp.StatusCode, body)
			}
			var created struct {
				ID string `json:"id"`
			}
			if err := json.Unmarshal(body, &created); err != nil {
				t.Fatal(err)
			}
			wsURL := url + "/v1/workspaces/" + created.ID
			if resp, body = do(t, "POST", wsURL+"/edges", `{"nodes":["X","Y"]}`, nil); resp.StatusCode != 200 {
				t.Fatalf("edge: %d %s", resp.StatusCode, body)
			}
			fault.Activate(fault.DynamicSettle, fault.Injection{Kind: fault.KindPanic, Panic: "settle corrupted", Count: 1})
			resp, body = do(t, "GET", wsURL, "", nil)
			return assertTyped(t, resp, body, 500, CodeInternal).Incident
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer fault.Reset()
			t.Cleanup(obs.Disable)
			fault.Reset()
			_, ts := newTestServer(t, Config{Workers: 1, Trace: true, SlowTraceThreshold: -1}, nil)
			id := tc.req(t, ts.URL)
			if id == "" {
				t.Fatal("500 carried no incident id")
			}
			tz := getTracez(t, ts.URL)
			found := false
			for _, tr := range tz.Traces {
				if tr.Root != nil && tr.Root.Attrs["incident"] == id {
					found = true
					if got := attrInt(t, tr.Root, "status"); got != 500 {
						t.Fatalf("correlated trace has status %d, want 500", got)
					}
				}
			}
			if !found {
				t.Fatalf("no retained trace carries incident %q (%d traces)", id, len(tz.Traces))
			}
		})
	}
}

// TestMetricszExposition checks the always-on metrics endpoint: Prometheus
// text format with the serving counters and the request-latency histogram.
// Values are not asserted — the registry is process-global and other tests
// contribute — only well-formed presence.
func TestMetricszExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{}, nil)
	if resp, body := do(t, "POST", ts.URL+"/v1/analyze", schemaBody(fig1Text), nil); resp.StatusCode != 200 {
		t.Fatalf("analyze: %d %s", resp.StatusCode, body)
	}
	resp, body := do(t, "GET", ts.URL+"/metricsz", "", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("/metricsz: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content-type = %q, want text/plain", ct)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE server_requests_total counter",
		"# TYPE server_request_seconds histogram",
		`server_request_seconds_bucket{le="+Inf"}`,
		"server_request_seconds_count",
		"engine_memo_misses_total",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metricsz missing %q:\n%s", want, text)
		}
	}
}

// TestStatszConsistentUnderHammer is the consistency regression for the
// Stats snapshot: while writers drive mixed-outcome traffic, every
// concurrent snapshot must satisfy the invariant that the outcome counters
// never sum past Total — the old one-atomic-per-counter scheme could show
// an outcome whose admission the reader had not yet seen. Run with -race:
// it also hammers /statsz over HTTP against the same counters.
func TestStatszConsistentUnderHammer(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 4, TenantRate: 1e6, TenantBurst: 1 << 20}, nil)

	check := func(st Stats) {
		sum := st.OK + st.ClientErr + st.Shed + st.QuotaDenied + st.Deadlines + st.Internal
		if sum > st.Total {
			t.Errorf("inconsistent snapshot: outcomes sum %d > total %d (%+v)", sum, st.Total, st)
		}
	}

	const writers, perWriter = 8, 40
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				switch i % 3 {
				case 0:
					do(t, "POST", ts.URL+"/v1/analyze", schemaBody(fig1Text), nil)
				case 1:
					do(t, "POST", ts.URL+"/v1/analyze", "{not json", nil) // 400
				default:
					do(t, "POST", ts.URL+"/v1/jointree", schemaBody(fig1Text), nil)
				}
			}
		}(w)
	}
	var readers sync.WaitGroup
	readers.Add(2)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				check(s.Stats())
			}
		}
	}()
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				resp, body := do(t, "GET", ts.URL+"/statsz", "", nil)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("/statsz: %d", resp.StatusCode)
					return
				}
				var st Stats
				if err := json.Unmarshal(body, &st); err != nil {
					t.Errorf("/statsz body: %v", err)
					return
				}
				check(st)
			}
		}
	}()
	wg.Wait()
	close(stop)
	readers.Wait()

	// Quiesced, the books balance exactly: every admitted request landed in
	// precisely one outcome bucket.
	st := s.Stats()
	sum := st.OK + st.ClientErr + st.Shed + st.QuotaDenied + st.Deadlines + st.Internal
	if sum != st.Total || st.Total != writers*perWriter {
		t.Fatalf("final books: outcomes sum %d, total %d, want both %d (%+v)", sum, st.Total, writers*perWriter, st)
	}
}

// benchmarkServe measures one warm memoized /v1/analyze round trip through
// the full envelope; the TraceOff/TraceOn pair is the serve-level view of
// the instrumentation overhead recorded in BENCH_obs.json.
func benchmarkServe(b *testing.B, cfg Config) {
	b.Helper()
	s := New(cfg, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer obs.Disable()
	body := schemaBody(fig1Text)
	post := func() {
		resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			b.Fatalf("analyze: %d", resp.StatusCode)
		}
	}
	post() // warm the memo so the engine path is a fingerprint probe
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		post()
	}
}

func BenchmarkServeAnalyzeTraceOff(b *testing.B) {
	benchmarkServe(b, Config{TenantRate: 1e9, TenantBurst: 1 << 30})
}

func BenchmarkServeAnalyzeTraceOn(b *testing.B) {
	// Default slow threshold: spans are recorded but no trace is retained —
	// the steady-state cost of leaving tracing on.
	benchmarkServe(b, Config{TenantRate: 1e9, TenantBurst: 1 << 30, Trace: true})
}

func BenchmarkServeAnalyzeTraceOnRetainAll(b *testing.B) {
	// Threshold -1 retains (snapshots and tree-assembles) every trace: the
	// worst case, every request paying the slow-query profiler too.
	benchmarkServe(b, Config{TenantRate: 1e9, TenantBurst: 1 << 30, Trace: true, SlowTraceThreshold: -1})
}
