package server

import (
	"math"
	"sync"
	"time"
)

// quotas is the per-tenant admission layer: one token bucket per tenant
// name, refilled at rate tokens/second up to burst. The clock is injected so
// the quota tests are deterministic (production uses time.Now).
//
// Buckets are created on first use and never expire; tenants are identified
// by a header, so the population is bounded by the deployment's real tenant
// set plus whatever an attacker invents — each bucket is two words, and the
// global in-flight limit (not the quota map) is what bounds work.
type quotas struct {
	mu    sync.Mutex
	rate  float64 // tokens per second
	burst float64 // bucket capacity (and initial fill)
	now   func() time.Time
	m     map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newQuotas(rate float64, burst int, now func() time.Time) *quotas {
	return &quotas{rate: rate, burst: float64(burst), now: now, m: make(map[string]*bucket)}
}

// allow spends one token from tenant's bucket. When the bucket is empty it
// refuses and reports how many whole seconds until a token accrues — the
// Retry-After the handler sends with the 429.
func (q *quotas) allow(tenant string) (retryAfter int, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	t := q.now()
	b := q.m[tenant]
	if b == nil {
		b = &bucket{tokens: q.burst, last: t}
		q.m[tenant] = b
	} else {
		b.tokens = math.Min(q.burst, b.tokens+t.Sub(b.last).Seconds()*q.rate)
		b.last = t
	}
	if b.tokens >= 1 {
		b.tokens--
		return 0, true
	}
	need := (1 - b.tokens) / q.rate
	retry := int(math.Ceil(need))
	if retry < 1 {
		retry = 1
	}
	return retry, false
}
