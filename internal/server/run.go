package server

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"time"
)

// Run serves s on l until ctx is cancelled, then shuts down gracefully:
// the drain gate flips (new requests answer 503, health checks fail, so a
// load balancer stops routing here), in-flight requests get grace to
// finish, and only then does the listener close. A nil error means every
// in-flight request completed inside the grace window.
func Run(ctx context.Context, l net.Listener, s *Server, grace time.Duration) error {
	srv := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	select {
	case err := <-errc:
		return err // listener failed before shutdown was requested
	case <-ctx.Done():
	}
	graceCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	drainErr := s.Drain(graceCtx)
	// The drain gate already refused new work; Shutdown closes the listener
	// and waits for the connection-level goroutines under the same budget.
	if err := srv.Shutdown(graceCtx); err != nil && drainErr == nil {
		drainErr = err
	}
	<-errc // Serve has returned http.ErrServerClosed by now
	return drainErr
}

// RunCLI is the shared implementation of `hgserved` and `hgtool serve`:
// parse flags, bind the listener, report the bound address on stdout (so
// callers using port 0 learn the real port), and serve until ctx cancels.
func RunCLI(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "localhost:8080", "listen address")
	grace := fs.Duration("grace", 5*time.Second, "graceful-shutdown drain window")
	inflight := fs.Int("inflight", 64, "global concurrent-request limit")
	rate := fs.Float64("rate", 50, "per-tenant sustained requests/second")
	burst := fs.Int("burst", 25, "per-tenant burst capacity")
	timeout := fs.Duration("timeout", 2*time.Second, "default per-request deadline")
	maxTimeout := fs.Duration("max-timeout", 10*time.Second, "upper clamp for client-requested deadlines")
	workers := fs.Int("workers", 0, "engine worker parallelism (0 = GOMAXPROCS)")
	seed := fs.Uint64("digest-seed", 0, "keyed memo digest seed (0 = unkeyed)")
	trace := fs.Bool("trace", false, "collect request spans (/tracez); metrics are always on")
	traceSample := fs.Int("trace-sample", 1, "head-sample 1 request in N when tracing")
	traceSlow := fs.Duration("trace-slow", 250*time.Millisecond, "retain traces at least this slow (negative: retain all)")
	traceRing := fs.Int("trace-ring", 64, "retained slow-trace ring capacity")
	dataDir := fs.String("data", "", "durable session directory (empty: sessions are memory-only)")
	snapEvery := fs.Int("snap-every", 0, "WAL records between background snapshots (0 = default 4096, negative disables)")
	dataSync := fs.Bool("data-sync", false, "fsync the session WAL on every edit")
	respCache := fs.Int("resp-cache", 0, "epoch-keyed response cache entries (0 = default 256, negative disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	s := New(Config{
		MaxInFlight:        *inflight,
		TenantRate:         *rate,
		TenantBurst:        *burst,
		DefaultTimeout:     *timeout,
		MaxTimeout:         *maxTimeout,
		Workers:            *workers,
		DigestSeed:         *seed,
		Logger:             log.New(stderr, "hgserved: ", log.LstdFlags),
		DataDir:            *dataDir,
		SnapshotEvery:      *snapEvery,
		SyncAppends:        *dataSync,
		RespCacheEntries:   *respCache,
		Trace:              *trace,
		TraceSampleN:       *traceSample,
		SlowTraceThreshold: *traceSlow,
		TraceRingCap:       *traceRing,
	}, nil)
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "listening on %s\n", l.Addr())
	return Run(ctx, l, s, *grace)
}
