// Package server is the robustness layer of the analysis service: an
// HTTP/JSON surface over the library's session API (analyze, join trees,
// classification, reduction, Yannakakis evaluation, mutable workspace
// sessions) engineered so that overload, bad input, deadlines, and even
// panics degrade into documented, typed responses instead of crashes or
// hangs.
//
// The layering, outermost first, for every request:
//
//  1. Drain gate — a draining server answers 503 "draining" immediately and
//     in-flight work is counted, so Drain can hand the process a clean
//     shutdown point.
//  2. Panic isolation — a recover() wraps the whole request; a panic
//     anywhere below (handler, executor, pool worker — the pool re-raises
//     worker panics on the caller) becomes a 500 with a fresh incident id
//     and the process survives.
//  3. Per-tenant quota — a token bucket per X-Tenant header (429
//     "tenant_quota" + Retry-After when empty), so one tenant's burst
//     cannot starve the others.
//  4. Global admission — a bounded in-flight count (429 "overloaded" +
//     Retry-After when full), so concurrency is capped before any work
//     starts.
//  5. Deadline — every request runs under a context deadline (default
//     DefaultTimeout, overridable per request via X-Deadline-Ms, clamped to
//     MaxTimeout) that rides the library's ctx plumbing: MCS and Graham
//     reductions poll it every ~4096 work units, the exec kernels every
//     ~4096 rows, so a deadline stops real work mid-flight (408
//     "deadline").
//  6. Body cap — request bodies over MaxBodyBytes report 413.
//
// Failures map to the one JSON error envelope (see ErrorBody); the status
// and code for every library error is pinned by the error-fidelity tests.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"runtime/debug"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dynamic"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/store"
)

// Serving metrics: the always-on /metricsz view of request traffic. The
// full outcome breakdown lives in Stats (served by /statsz); these cover
// the rates and latency shape operators alert on.
var (
	srvRequests  = obs.C("server_requests_total")
	srvIncidents = obs.C("server_incidents_total")
	srvLatency   = obs.H("server_request_seconds")
)

// Config sizes the robustness envelope. The zero value is usable: every
// field falls back to the documented default.
type Config struct {
	// MaxInFlight bounds globally concurrent requests (default 64).
	MaxInFlight int
	// TenantRate is each tenant's sustained admission rate in requests per
	// second (default 50).
	TenantRate float64
	// TenantBurst is each tenant's bucket capacity (default 25).
	TenantBurst int
	// DefaultTimeout is the per-request deadline when the client sends no
	// X-Deadline-Ms (default 2s).
	DefaultTimeout time.Duration
	// MaxTimeout clamps client-requested deadlines (default 10s).
	MaxTimeout time.Duration
	// MaxBodyBytes caps request bodies (default 1 MiB).
	MaxBodyBytes int64
	// Workers sizes the engine's worker pool (default GOMAXPROCS).
	Workers int
	// DigestSeed, when nonzero, keys the engine's memo digests (SipHash)
	// so untrusted tenants cannot craft fingerprint collisions.
	DigestSeed uint64
	// Logger receives panic incidents and lifecycle lines; nil discards.
	Logger *log.Logger

	// DataDir, when set, makes workspace sessions durable: each session
	// gets a snapshot + WAL directory under it (internal/store), sessions
	// found there are recovered on boot, and Drain flushes a final snapshot
	// per dirty session. Empty: sessions are memory-only (the pre-durable
	// behavior).
	DataDir string
	// SnapshotEvery is the per-session WAL record count that triggers a
	// background compaction (default 4096; negative disables automatic
	// compaction — Drain still cuts the final snapshot).
	SnapshotEvery int
	// SyncAppends fsyncs the session WAL on every edit. Off, an
	// acknowledged edit survives a process crash but not necessarily a
	// whole-machine power failure.
	SyncAppends bool
	// RespCacheEntries bounds the epoch-keyed response cache for workspace
	// query bodies (default 256; negative disables the cache).
	RespCacheEntries int

	// Trace turns span collection on for this process (obs.Enable). Off by
	// default: the disabled instrumentation path costs one atomic load per
	// call site. Metrics (/metricsz) are always on regardless.
	Trace bool
	// TraceSampleN head-samples 1 request in N when tracing (default 1 =
	// every request). The decision is made at the root, so unsampled
	// requests pay nothing downstream.
	TraceSampleN int
	// SlowTraceThreshold is the root duration at which the profiler retains
	// a trace's full span tree for /tracez (default 250ms; <0 retains every
	// sampled trace — useful in tests and CLI runs).
	SlowTraceThreshold time.Duration
	// TraceRingCap bounds how many slow traces /tracez retains (default 64).
	TraceRingCap int
	// TraceMaxSpans bounds each trace's span buffer (default 512); overflow
	// is counted, not grown.
	TraceMaxSpans int
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.TenantRate <= 0 {
		c.TenantRate = 50
	}
	if c.TenantBurst <= 0 {
		c.TenantBurst = 25
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 10 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.TraceSampleN <= 0 {
		c.TraceSampleN = 1
	}
	if c.SlowTraceThreshold == 0 {
		c.SlowTraceThreshold = 250 * time.Millisecond
	}
	if c.TraceRingCap <= 0 {
		c.TraceRingCap = 64
	}
	if c.RespCacheEntries == 0 {
		c.RespCacheEntries = 256
	}
	return c
}

// Stats is a snapshot of the server's counters (see Server.Stats).
type Stats struct {
	Total       uint64 `json:"total"`       // requests admitted past the drain gate
	OK          uint64 `json:"ok"`          // 2xx responses
	ClientErr   uint64 `json:"clientErr"`   // 4xx responses (excluding sheds)
	Shed        uint64 `json:"shed"`        // 429 "overloaded"
	QuotaDenied uint64 `json:"quotaDenied"` // 429 "tenant_quota"
	Deadlines   uint64 `json:"deadlines"`   // 408 "deadline"
	Panics      uint64 `json:"panics"`      // recovered panics (500 + incident)
	Internal    uint64 `json:"internal"`    // 500s total (panics plus unclassified errors)
	InFlight    int    `json:"inFlight"`    // currently admitted requests
}

// Server is one service instance: a memoizing engine shared by all tenants,
// a registry of mutable workspace sessions, and the admission machinery.
// Construct with New; all methods are safe for concurrent use.
type Server struct {
	cfg    Config
	eng    *engine.Engine
	quota  *quotas
	sem    chan struct{} // global in-flight tokens
	logger *log.Logger

	gate gate // drain gate: counts in-flight, refuses when draining

	tracer *obs.Tracer   // per-request root spans (nil-safe when tracing is off)
	prof   *obs.Profiler // slow-trace retention behind /tracez

	mu       sync.Mutex
	nextWS   int
	spaces   map[string]*dynamic.Workspace
	sessions map[string]*store.Session // durable backing per workspace (DataDir only)

	respCache *respCache // epoch-keyed query bodies; nil when disabled

	incidents atomic.Uint64
	ring      incidentRing

	// statsMu guards the counter fields of stats as one unit, so a /statsz
	// snapshot is internally consistent: the outcome counters never sum past
	// Total, no matter how the reader interleaves with in-flight requests.
	// (The previous scheme — one atomic per counter — let a reader observe a
	// request's outcome without its admission.)
	statsMu sync.Mutex
	stats   Stats
}

// bump updates the counter block under its lock.
func (s *Server) bump(f func(*Stats)) {
	s.statsMu.Lock()
	f(&s.stats)
	s.statsMu.Unlock()
}

// New builds a Server from cfg (zero value: all defaults). now is the quota
// clock; pass nil for time.Now (tests inject a fake).
func New(cfg Config, now func() time.Time) *Server {
	cfg = cfg.withDefaults()
	if now == nil {
		now = time.Now
	}
	opts := []engine.Option{engine.WithWorkers(cfg.Workers)}
	if cfg.DigestSeed != 0 {
		opts = append(opts, engine.WithKeyedDigest(cfg.DigestSeed))
	}
	threshold := cfg.SlowTraceThreshold
	if threshold < 0 {
		threshold = 0 // profiler convention: <= 0 retains every sampled trace
	}
	prof := obs.NewProfiler(threshold, cfg.TraceRingCap)
	if cfg.Trace {
		obs.Enable()
	}
	s := &Server{
		cfg:      cfg,
		eng:      engine.New(opts...),
		quota:    newQuotas(cfg.TenantRate, cfg.TenantBurst, now),
		sem:      make(chan struct{}, cfg.MaxInFlight),
		logger:   cfg.Logger,
		tracer:   obs.NewTracer(cfg.TraceSampleN, cfg.TraceMaxSpans, prof),
		prof:     prof,
		spaces:   make(map[string]*dynamic.Workspace),
		sessions: make(map[string]*store.Session),
	}
	if cfg.RespCacheEntries > 0 {
		s.respCache = newRespCache(cfg.RespCacheEntries)
	}
	if cfg.DataDir != "" {
		s.recoverSessions()
	}
	return s
}

// storeOptions maps the config onto the per-session durability knobs.
func (s *Server) storeOptions() store.Options {
	return store.Options{SyncAppends: s.cfg.SyncAppends, SnapshotEvery: s.cfg.SnapshotEvery}
}

// wsOptions are the workspace options every session — created or recovered
// — is built with: the shared engine memo and the configured parallelism.
func (s *Server) wsOptions() []dynamic.Option {
	return []dynamic.Option{dynamic.WithEngine(s.eng), dynamic.WithParallelism(s.cfg.Workers)}
}

// recoverSessions reopens every session directory under DataDir on boot. A
// session that fails recovery is logged and skipped — its directory stays
// on disk for `hgtool ws` inspection — and never blocks the others.
func (s *Server) recoverSessions() {
	if err := os.MkdirAll(s.cfg.DataDir, 0o755); err != nil {
		if s.logger != nil {
			s.logger.Printf("data dir %s: %v (sessions will fail to persist)", s.cfg.DataDir, err)
		}
		return
	}
	names, err := store.ListSessions(s.cfg.DataDir)
	if err != nil {
		if s.logger != nil {
			s.logger.Printf("data dir %s: list sessions: %v", s.cfg.DataDir, err)
		}
		return
	}
	for _, id := range names {
		sess, ws, err := store.Open(filepath.Join(s.cfg.DataDir, id), s.storeOptions(), s.wsOptions()...)
		if err != nil {
			if s.logger != nil {
				s.logger.Printf("session %s: recovery failed, left on disk: %v", id, err)
			}
			continue
		}
		s.spaces[id] = ws
		s.sessions[id] = sess
		// Recovered ids stay authoritative: ws-N creation resumes past the
		// highest one so fresh sessions never collide with a directory.
		var n int
		if _, err := fmt.Sscanf(id, "ws-%d", &n); err == nil && n > s.nextWS {
			s.nextWS = n
		}
		if s.logger != nil {
			s.logger.Printf("session %s: recovered at epoch %d (%d edges)", id, ws.Epoch(), ws.NumEdges())
		}
	}
}

// Stats returns a snapshot of the counters /statsz serves. The counter
// block is copied under one lock, so the snapshot is consistent: OK +
// ClientErr + Shed + QuotaDenied + Deadlines + Internal never exceeds
// Total. InFlight is read separately (it is instantaneous, not a counter).
func (s *Server) Stats() Stats {
	s.statsMu.Lock()
	st := s.stats
	s.statsMu.Unlock()
	st.InFlight = len(s.sem)
	return st
}

// Handler returns the full route table. Method and path dispatch use the
// standard mux; everything under /v1/ runs inside the robustness envelope.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", s.guard(s.handleAnalyze))
	mux.HandleFunc("POST /v1/jointree", s.guard(s.handleJoinTree))
	mux.HandleFunc("POST /v1/classify", s.guard(s.handleClassify))
	mux.HandleFunc("POST /v1/reduce", s.guard(s.handleReduce))
	mux.HandleFunc("POST /v1/eval", s.guard(s.handleEval))
	mux.HandleFunc("POST /v1/workspaces", s.guard(s.handleWorkspaceCreate))
	mux.HandleFunc("GET /v1/workspaces/{id}", s.guard(s.handleWorkspaceGet))
	mux.HandleFunc("POST /v1/workspaces/{id}/edges", s.guard(s.handleAddEdge))
	mux.HandleFunc("DELETE /v1/workspaces/{id}/edges/{edge}", s.guard(s.handleRemoveEdge))
	mux.HandleFunc("POST /v1/workspaces/{id}/rename", s.guard(s.handleRename))
	mux.HandleFunc("POST /v1/workspaces/{id}/query", s.guard(s.handleQuery))
	mux.HandleFunc("GET /v1/workspaces/{id}/watch", s.guard(s.handleWatch))
	mux.HandleFunc("GET /v1/ws/{id}/watch", s.guard(s.handleWatch))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	mux.HandleFunc("GET /metricsz", s.handleMetricsz)
	mux.HandleFunc("GET /tracez", s.handleTracez)
	return mux
}

// handlerFunc is the shape of every endpoint: take a request (its context
// carries the deadline), return a JSON-encodable result or an error the
// taxonomy maps. Handlers never write to the ResponseWriter themselves, so
// the panic recovery above them can always still produce a response.
type handlerFunc func(r *http.Request) (any, error)

// statusWriter records the first status code written so the root span can
// carry the response status without handlers threading it around.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.code == 0 {
		sw.code = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) status() int {
	if sw.code == 0 {
		return http.StatusOK
	}
	return sw.code
}

// guard wraps a handler in the admission/deadline/recovery envelope
// documented on the package.
func (s *Server) guard(h handlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !s.gate.enter() {
			s.writeError(w, http.StatusServiceUnavailable,
				ErrorBody{Code: CodeDraining, Message: "server: shutting down"})
			return
		}
		defer s.gate.leave()
		s.bump(func(st *Stats) { st.Total++ })
		srvRequests.Inc()

		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		w = sw

		tenant := r.Header.Get("X-Tenant")
		if tenant == "" {
			tenant = "anon"
		}

		ctx, root := s.tracer.StartTrace(r.Context(), "server.request")
		root.SetAttr("method", r.Method)
		root.SetAttr("path", r.URL.Path)
		root.SetAttr("tenant", tenant)
		r = r.WithContext(ctx)

		// Root finalization must run after the recover below (defers are
		// LIFO), so a panic can stamp its incident id and force retention
		// before the trace is handed to the profiler.
		defer func() {
			srvLatency.Observe(time.Since(start))
			root.SetInt("status", int64(sw.status()))
			if dl, ok := r.Context().Deadline(); ok {
				root.SetInt("deadlineRemainingNs", int64(time.Until(dl)))
			}
			root.End()
		}()

		// Panic isolation: anything below — handler code, executor kernels,
		// pool workers (the pool re-raises worker panics here) — lands in
		// this recover, mints an incident id, and answers 500. The process
		// survives; the incident id correlates the response with the log,
		// and is stamped on the (force-retained) trace for /tracez.
		defer func() {
			if v := recover(); v != nil {
				stack := debug.Stack()
				id := s.mintIncident(r, fmt.Sprint(v), string(stack))
				s.bump(func(st *Stats) { st.Panics++; st.Internal++ })
				root.SetAttr("incident", id)
				root.Retain()
				if s.logger != nil {
					s.logger.Printf("panic %s: %v\n%s", id, v, stack)
				}
				s.writeError(w, http.StatusInternalServerError,
					ErrorBody{Code: CodeInternal, Message: "internal error", Incident: id})
			}
		}()

		if retry, ok := s.quota.allow(tenant); !ok {
			s.bump(func(st *Stats) { st.QuotaDenied++ })
			w.Header().Set("Retry-After", strconv.Itoa(retry))
			s.writeError(w, http.StatusTooManyRequests,
				ErrorBody{Code: CodeTenantQuota, Message: "tenant " + tenant + " over quota"})
			return
		}

		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		default:
			s.bump(func(st *Stats) { st.Shed++ })
			w.Header().Set("Retry-After", "1")
			s.writeError(w, http.StatusTooManyRequests,
				ErrorBody{Code: CodeOverloaded, Message: "server at capacity"})
			return
		}

		d := s.cfg.DefaultTimeout
		if ms := r.Header.Get("X-Deadline-Ms"); ms != "" {
			if n, err := strconv.Atoi(ms); err == nil && n > 0 {
				d = time.Duration(n) * time.Millisecond
				if d > s.cfg.MaxTimeout {
					d = s.cfg.MaxTimeout
				}
			}
		}
		root.SetInt("deadlineMs", d.Milliseconds())
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		r = r.WithContext(ctx)
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)

		// Chaos site: after admission and deadline setup, before the
		// endpoint — where the fault suite injects delays, errors, and
		// panics that must surface through this envelope.
		if err := fault.HitCtx(r.Context(), fault.ServerHandle); err != nil {
			s.fail(w, r, err)
			return
		}

		res, err := h(r)
		if err != nil {
			s.fail(w, r, err)
			return
		}
		s.bump(func(st *Stats) { st.OK++ })
		s.writeJSON(w, http.StatusOK, res)
	}
}

// mintIncident allocates the next incident id and records the failure —
// with its request summary and optional stack — in the bounded ring /statsz
// serves.
func (s *Server) mintIncident(r *http.Request, summary, stack string) string {
	srvIncidents.Inc()
	id := fmt.Sprintf("inc-%06d", s.incidents.Add(1))
	s.ring.record(Incident{
		ID:      id,
		Time:    time.Now(),
		Method:  r.Method,
		Path:    r.URL.Path,
		Tenant:  r.Header.Get("X-Tenant"),
		Summary: summary,
		Stack:   stack,
	})
	return id
}

// fail maps err through the taxonomy and writes the typed body; errors the
// taxonomy does not recognize become 500s with incident ids, so nothing
// reaches the wire untyped.
func (s *Server) fail(w http.ResponseWriter, r *http.Request, err error) {
	status, body, ok := classify(err)
	if !ok {
		id := s.mintIncident(r, err.Error(), "")
		if s.logger != nil {
			s.logger.Printf("unclassified error %s: %v", id, err)
		}
		s.bump(func(st *Stats) { st.Internal++ })
		obs.FromContext(r.Context()).SetAttr("incident", id)
		s.writeError(w, http.StatusInternalServerError,
			ErrorBody{Code: CodeInternal, Message: "internal error", Incident: id})
		return
	}
	switch {
	case status == http.StatusRequestTimeout:
		s.bump(func(st *Stats) { st.Deadlines++ })
	case status >= 400 && status < 500:
		s.bump(func(st *Stats) { st.ClientErr++ })
	}
	obs.FromContext(r.Context()).SetAttr("errCode", body.Code)
	s.writeError(w, status, body)
}

func (s *Server) writeError(w http.ResponseWriter, status int, body ErrorBody) {
	s.writeJSON(w, status, errorResponse{Error: body})
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil && s.logger != nil {
		s.logger.Printf("encode response: %v", err)
	}
}

// handleHealthz bypasses admission (health checks must not consume quota):
// 200 while serving, 503 once draining.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.gate.isDraining() {
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]bool{"ok": false, "draining": true})
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// handleStatsz serves the counters plus the incident ring: the id from any
// 500 body can be looked up here while the ring retains it.
func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, struct {
		Stats
		Incidents []Incident `json:"incidents"`
	}{s.Stats(), s.ring.snapshot()})
}

// handleMetricsz serves the process-wide metrics registry in Prometheus
// text exposition format. Bypasses admission like /healthz: scrapes must
// not consume quota or be shed under load.
func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = obs.Default.WritePrometheus(w)
}

// handleTracez serves the slow-trace ring: full span trees of retained
// traces, newest first, plus the profiler's seen/retained counters.
// Bypasses admission.
func (s *Server) handleTracez(w http.ResponseWriter, r *http.Request) {
	seen, retained := s.prof.Stats()
	s.writeJSON(w, http.StatusOK, struct {
		Enabled   bool             `json:"enabled"`
		Seen      uint64           `json:"seen"`
		Retained  uint64           `json:"retained"`
		Threshold string           `json:"threshold"`
		Traces    []*obs.TraceJSON `json:"traces"`
	}{obs.Enabled(), seen, retained, s.prof.Threshold().String(), s.prof.Snapshot()})
}

// FlushOutcome reports one session's final flush during Drain: the epoch
// made durable, and the error if the flush failed (empty on success).
type FlushOutcome struct {
	ID    string `json:"id"`
	Epoch uint64 `json:"epoch"`
	Error string `json:"error,omitempty"`
}

// Drain flips the server into draining mode — new requests answer 503, the
// health check fails — and blocks until in-flight requests finish or ctx
// expires (reporting ctx.Err() with work still in flight). With a DataDir,
// every dirty session is then flushed to a final snapshot and closed; the
// per-session outcomes are logged, and the first flush failure is returned
// when the gate itself drained cleanly. Idempotent: a second Drain finds
// every session already clean.
func (s *Server) Drain(ctx context.Context) error {
	gateErr := s.gate.drain(ctx)
	var flushErr error
	for _, o := range s.FlushSessions() {
		if s.logger != nil {
			if o.Error != "" {
				s.logger.Printf("session %s: flush failed at epoch %d: %s", o.ID, o.Epoch, o.Error)
			} else {
				s.logger.Printf("session %s: flushed at epoch %d", o.ID, o.Epoch)
			}
		}
		if o.Error != "" && flushErr == nil {
			flushErr = fmt.Errorf("session %s: %s", o.ID, o.Error)
		}
	}
	if gateErr != nil {
		return gateErr
	}
	return flushErr
}

// FlushSessions compacts every dirty durable session to a final snapshot
// and closes it, reporting one outcome per session (sorted by id). A flush
// racing an in-flight background compaction serializes behind it — the
// store's compaction lock guarantees no acknowledged edit is lost between
// the two. Safe to call repeatedly; sessions already clean just close.
func (s *Server) FlushSessions() []FlushOutcome {
	s.mu.Lock()
	ids := make([]string, 0, len(s.sessions))
	for id := range s.sessions {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	sort.Strings(ids)
	out := make([]FlushOutcome, 0, len(ids))
	for _, id := range ids {
		s.mu.Lock()
		sess := s.sessions[id]
		s.mu.Unlock()
		if sess == nil {
			continue
		}
		o := FlushOutcome{ID: id, Epoch: sess.Epoch()}
		func() {
			// An injected panic at store.snapshot runs outside the request
			// envelope here; contain it to this session's outcome.
			defer func() {
				if v := recover(); v != nil {
					o.Error = fmt.Sprint(v)
				}
			}()
			if sess.Dirty() {
				if err := sess.Compact(); err != nil {
					o.Error = err.Error()
				}
			}
			if err := sess.Close(); err != nil && o.Error == "" {
				o.Error = err.Error()
			}
		}()
		out = append(out, o)
	}
	return out
}

// gate counts in-flight requests and refuses new ones while draining. It is
// a mutex-guarded counter instead of a WaitGroup because enter() must
// atomically check "draining?" and increment — WaitGroup.Add racing
// WaitGroup.Wait is a misuse.
type gate struct {
	mu       sync.Mutex
	draining bool
	n        int
	idle     chan struct{} // closed when draining and n hits 0
}

func (g *gate) enter() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.draining {
		return false
	}
	g.n++
	return true
}

func (g *gate) leave() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n--
	if g.draining && g.n == 0 && g.idle != nil {
		close(g.idle)
		g.idle = nil
	}
}

func (g *gate) isDraining() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.draining
}

func (g *gate) drain(ctx context.Context) error {
	g.mu.Lock()
	g.draining = true
	if g.n == 0 {
		g.mu.Unlock()
		return nil
	}
	if g.idle == nil {
		g.idle = make(chan struct{})
	}
	idle := g.idle
	g.mu.Unlock()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
