package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/gen"
)

// fig1Text is the paper's Figure 1 schema in the wire text format.
const fig1Text = "A B C\nC D E\nA E F\nA C E"

// triangleText is the canonical cyclic schema.
const triangleText = "A B\nB C\nC A"

func newTestServer(t *testing.T, cfg Config, now func() time.Time) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg, now)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// do issues one request and returns the response with its body drained.
func do(t *testing.T, method, url, body string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func schemaBody(schema string) string {
	b, _ := json.Marshal(map[string]string{"schema": schema})
	return string(b)
}

// decodeError unwraps the {"error": {...}} envelope.
func decodeError(t *testing.T, body []byte) ErrorBody {
	t.Helper()
	var env errorResponse
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("error body is not the documented envelope: %v (body %q)", err, body)
	}
	return env.Error
}

func TestAnalyzeAndJoinTreeHappyPath(t *testing.T) {
	_, ts := newTestServer(t, Config{}, nil)
	resp, body := do(t, "POST", ts.URL+"/v1/analyze", schemaBody(fig1Text), nil)
	if resp.StatusCode != 200 {
		t.Fatalf("analyze: status %d body %s", resp.StatusCode, body)
	}
	var out struct {
		Acyclic bool `json:"acyclic"`
		Nodes   int  `json:"nodes"`
		Edges   int  `json:"edges"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Acyclic || out.Nodes != 6 || out.Edges != 4 {
		t.Fatalf("analyze(fig1) = %+v", out)
	}
	resp, body = do(t, "POST", ts.URL+"/v1/jointree", schemaBody(fig1Text), nil)
	if resp.StatusCode != 200 {
		t.Fatalf("jointree: status %d body %s", resp.StatusCode, body)
	}
	var jt struct {
		Parent  []int      `json:"parent"`
		Program []stepJSON `json:"program"`
	}
	if err := json.Unmarshal(body, &jt); err != nil {
		t.Fatal(err)
	}
	if len(jt.Parent) != 4 || len(jt.Program) != 6 {
		t.Fatalf("jointree(fig1) = %+v (want 4 edges, 6 reducer steps)", jt)
	}
}

func TestEvalHappyPath(t *testing.T) {
	_, ts := newTestServer(t, Config{}, nil)
	req := map[string]any{
		"schema": "A B\nB C",
		"tables": []map[string]any{
			{"attrs": []string{"A", "B"}, "rows": [][]string{{"1", "2"}}},
			{"attrs": []string{"B", "C"}, "rows": [][]string{{"2", "3"}, {"9", "9"}}},
		},
		"attrs": []string{"A", "C"},
	}
	b, _ := json.Marshal(req)
	resp, body := do(t, "POST", ts.URL+"/v1/eval", string(b), nil)
	if resp.StatusCode != 200 {
		t.Fatalf("eval: status %d body %s", resp.StatusCode, body)
	}
	var out struct {
		Attrs   []string   `json:"attrs"`
		Rows    [][]string `json:"rows"`
		RowsOut int        `json:"rowsOut"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 1 || out.Rows[0][0] != "1" || out.Rows[0][1] != "3" {
		t.Fatalf("eval rows = %v, want [[1 3]]", out.Rows)
	}
	if out.RowsOut != 2 {
		t.Fatalf("rowsOut = %d, want 2 (dangling (9,9) reduced away)", out.RowsOut)
	}
}

// TestErrorFidelity pins every documented error to its status code and JSON
// shape. Each row drives a real request through the full envelope.
func TestErrorFidelity(t *testing.T) {
	defer fault.Reset()
	s, ts := newTestServer(t, Config{MaxBodyBytes: 256}, nil)

	// A workspace with known content for the workspace-error rows:
	// ws-1 at epoch 1 after one AddEdge.
	resp, body := do(t, "POST", ts.URL+"/v1/workspaces", schemaBody("A B"), nil)
	if resp.StatusCode != 200 {
		t.Fatalf("workspace create: %d %s", resp.StatusCode, body)
	}
	var created struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	wsURL := ts.URL + "/v1/workspaces/" + created.ID
	if resp, body = do(t, "POST", wsURL+"/edges", `{"nodes":["B","C"]}`, nil); resp.StatusCode != 200 {
		t.Fatalf("add edge: %d %s", resp.StatusCode, body)
	}

	type check func(t *testing.T, e ErrorBody)
	rows := []struct {
		name   string
		method string
		path   string
		body   string
		hdr    map[string]string
		arm    func()
		status int
		code   string
		extra  check
	}{
		{
			name: "parse", method: "POST", path: "/v1/analyze",
			body: schemaBody(""), status: 400, code: CodeParse,
			extra: func(t *testing.T, e ErrorBody) {
				if e.Line != 1 || e.Col != 1 {
					t.Errorf("parse position = %d:%d, want 1:1", e.Line, e.Col)
				}
			},
		},
		{
			name: "unknown_node", method: "POST", path: "/v1/eval",
			body:   `{"schema":"A B","tables":[{"attrs":["A","B"],"rows":[]}],"attrs":["Z"]}`,
			status: 400, code: CodeUnknownNode,
			extra: func(t *testing.T, e ErrorBody) {
				if e.Name != "Z" {
					t.Errorf("unknown node name = %q, want Z", e.Name)
				}
			},
		},
		{
			name: "bad_json", method: "POST", path: "/v1/analyze",
			body: "{", status: 400, code: CodeBadJSON,
		},
		{
			name: "bad_request", method: "POST", path: "/v1/eval",
			// Two-edge schema, one table: shape mismatch the library rejects.
			body:   `{"schema":"A B\nB C","tables":[{"attrs":["A","B"],"rows":[]}],"attrs":["A"]}`,
			status: 400, code: CodeBadRequest,
		},
		{
			name: "cyclic", method: "POST", path: "/v1/jointree",
			body: schemaBody(triangleText), status: 422, code: CodeCyclic,
		},
		{
			name: "stale_epoch", method: "POST", path: "/v1/workspaces/" + created.ID + "/query",
			body: `{"op":"verdict","epoch":0}`, status: 409, code: CodeStaleEpoch,
			extra: func(t *testing.T, e ErrorBody) {
				if e.Handle != 0 || e.Current == 0 {
					t.Errorf("stale epochs = handle %d current %d, want handle 0 and a later current", e.Handle, e.Current)
				}
			},
		},
		{
			name: "unknown_edge", method: "DELETE", path: "/v1/workspaces/" + created.ID + "/edges/99",
			status: 404, code: CodeUnknownEdge,
			extra: func(t *testing.T, e ErrorBody) {
				if e.EdgeID != 99 {
					t.Errorf("edge id = %d, want 99", e.EdgeID)
				}
			},
		},
		{
			name: "node_exists", method: "POST", path: "/v1/workspaces/" + created.ID + "/rename",
			body: `{"old":"A","new":"C"}`, status: 409, code: CodeNodeExists,
			extra: func(t *testing.T, e ErrorBody) {
				if e.Name != "C" {
					t.Errorf("conflicting name = %q, want C", e.Name)
				}
			},
		},
		{
			name: "not_found", method: "GET", path: "/v1/workspaces/nope",
			status: 404, code: CodeNotFound,
		},
		{
			name: "body_too_large", method: "POST", path: "/v1/analyze",
			body:   schemaBody(strings.Repeat("A B\n", 200)),
			status: 413, code: CodeBodyTooLarge,
		},
		{
			name: "deadline", method: "POST", path: "/v1/analyze",
			// A unique schema (cold memo) plus an injected 60ms stall against
			// a 1ms deadline: the ctx plumbing must fail the request.
			body: schemaBody("DL1 DL2\nDL2 DL3"),
			hdr:  map[string]string{"X-Deadline-Ms": "1"},
			arm: func() {
				fault.Activate(fault.ServerHandle, fault.Injection{
					Kind: fault.KindDelay, Delay: 60 * time.Millisecond, Count: 1,
				})
			},
			status: 408, code: CodeDeadline,
		},
		{
			name: "internal_panic", method: "POST", path: "/v1/analyze",
			body: schemaBody(fig1Text),
			arm: func() {
				fault.Activate(fault.ServerHandle, fault.Injection{
					Kind: fault.KindPanic, Panic: "boom", Count: 1,
				})
			},
			status: 500, code: CodeInternal,
			extra: func(t *testing.T, e ErrorBody) {
				if e.Incident == "" {
					t.Error("500 without incident id")
				}
			},
		},
	}
	for _, row := range rows {
		t.Run(row.name, func(t *testing.T) {
			fault.Reset()
			if row.arm != nil {
				row.arm()
			}
			resp, body := do(t, row.method, ts.URL+row.path, row.body, row.hdr)
			if resp.StatusCode != row.status {
				t.Fatalf("status = %d, want %d (body %s)", resp.StatusCode, row.status, body)
			}
			e := decodeError(t, body)
			if e.Code != row.code {
				t.Fatalf("code = %q, want %q (body %s)", e.Code, row.code, body)
			}
			if e.Message == "" {
				t.Error("error body without message")
			}
			if row.extra != nil {
				row.extra(t, e)
			}
		})
	}

	// The process survived the injected panic: a follow-up request succeeds.
	fault.Reset()
	if resp, body := do(t, "POST", ts.URL+"/v1/analyze", schemaBody(fig1Text), nil); resp.StatusCode != 200 {
		t.Fatalf("server did not survive the panic: %d %s", resp.StatusCode, body)
	}
	if got := s.Stats().Panics; got != 1 {
		t.Errorf("panic counter = %d, want 1", got)
	}
}

// TestErrorFidelityConcurrent drives a burst through a windowed panic plan:
// exactly Count requests must answer 500-with-incident, every other request
// 200, and the server must stay coherent throughout.
func TestErrorFidelityConcurrent(t *testing.T) {
	defer fault.Reset()
	_, ts := newTestServer(t, Config{
		MaxInFlight: 128, TenantRate: 100000, TenantBurst: 100000,
	}, nil)
	const total, panics = 60, 5
	fault.Reset()
	fault.Activate(fault.ServerHandle, fault.Injection{
		Kind: fault.KindPanic, Panic: "chaos", After: 10, Count: panics,
	})
	var wg sync.WaitGroup
	codes := make([]int, total)
	incidents := make([]string, total)
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := do(t, "POST", ts.URL+"/v1/analyze", schemaBody(fig1Text), nil)
			codes[i] = resp.StatusCode
			if resp.StatusCode == 500 {
				incidents[i] = decodeError(t, body).Incident
			}
		}(i)
	}
	wg.Wait()
	got500, got200 := 0, 0
	seen := map[string]bool{}
	for i, c := range codes {
		switch c {
		case 200:
			got200++
		case 500:
			got500++
			if incidents[i] == "" {
				t.Error("500 without incident id under load")
			}
			if seen[incidents[i]] {
				t.Errorf("incident id %q reused", incidents[i])
			}
			seen[incidents[i]] = true
		default:
			t.Errorf("unexpected status %d under load", c)
		}
	}
	if got500 != panics || got200 != total-panics {
		t.Fatalf("got %d panics / %d ok, want %d / %d", got500, got200, panics, total-panics)
	}
}

func TestAdmissionControlSheds(t *testing.T) {
	defer fault.Reset()
	s, ts := newTestServer(t, Config{MaxInFlight: 2, TenantRate: 100000, TenantBurst: 100000}, nil)
	// Stall every admitted request so the in-flight limit fills.
	fault.Reset()
	fault.Activate(fault.ServerHandle, fault.Injection{
		Kind: fault.KindDelay, Delay: 300 * time.Millisecond,
	})
	const total = 8
	var wg sync.WaitGroup
	codes := make([]int, total)
	retry := make([]string, total)
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, _ := do(t, "POST", ts.URL+"/v1/analyze", schemaBody(fig1Text), nil)
			codes[i] = resp.StatusCode
			retry[i] = resp.Header.Get("Retry-After")
		}(i)
	}
	wg.Wait()
	shed := 0
	for i, c := range codes {
		switch c {
		case 200:
		case 429:
			shed++
			if retry[i] == "" {
				t.Error("429 without Retry-After")
			}
		default:
			t.Errorf("unexpected status %d", c)
		}
	}
	if shed == 0 {
		t.Fatal("no requests shed with MaxInFlight=2 and 8 concurrent stalls")
	}
	if got := s.Stats().Shed; got != uint64(shed) {
		t.Errorf("shed counter = %d, want %d", got, shed)
	}
}

func TestTenantQuota(t *testing.T) {
	clock := time.Unix(1000, 0)
	now := func() time.Time { return clock }
	_, ts := newTestServer(t, Config{TenantRate: 1, TenantBurst: 2}, now)
	hdrA := map[string]string{"X-Tenant": "alice"}
	hdrB := map[string]string{"X-Tenant": "bob"}
	// Alice's burst of 2 is admitted, the third refuses with Retry-After.
	for i := 0; i < 2; i++ {
		if resp, body := do(t, "POST", ts.URL+"/v1/analyze", schemaBody(fig1Text), hdrA); resp.StatusCode != 200 {
			t.Fatalf("request %d: %d %s", i, resp.StatusCode, body)
		}
	}
	resp, body := do(t, "POST", ts.URL+"/v1/analyze", schemaBody(fig1Text), hdrA)
	if resp.StatusCode != 429 {
		t.Fatalf("third request: %d, want 429", resp.StatusCode)
	}
	if e := decodeError(t, body); e.Code != CodeTenantQuota {
		t.Fatalf("code = %q, want %q", e.Code, CodeTenantQuota)
	}
	if resp.Header.Get("Retry-After") != "1" {
		t.Errorf("Retry-After = %q, want 1", resp.Header.Get("Retry-After"))
	}
	// Bob is unaffected by Alice's exhaustion.
	if resp, _ := do(t, "POST", ts.URL+"/v1/analyze", schemaBody(fig1Text), hdrB); resp.StatusCode != 200 {
		t.Fatalf("bob: %d, want 200", resp.StatusCode)
	}
	// One simulated second later Alice has a token again.
	clock = clock.Add(time.Second)
	if resp, _ := do(t, "POST", ts.URL+"/v1/analyze", schemaBody(fig1Text), hdrA); resp.StatusCode != 200 {
		t.Fatalf("after refill: %d, want 200", resp.StatusCode)
	}
}

func TestWorkspaceSessionLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{}, nil)
	resp, body := do(t, "POST", ts.URL+"/v1/workspaces", "", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("create empty: %d %s", resp.StatusCode, body)
	}
	var created struct {
		ID    string `json:"id"`
		Epoch uint64 `json:"epoch"`
	}
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	wsURL := ts.URL + "/v1/workspaces/" + created.ID

	// Build the triangle edge by edge, watch the verdict flip, then break
	// the cycle and watch it flip back.
	var lastEdge int
	for i, e := range []string{`["A","B"]`, `["B","C"]`, `["C","A"]`} {
		resp, body = do(t, "POST", wsURL+"/edges", `{"nodes":`+e+`}`, nil)
		if resp.StatusCode != 200 {
			t.Fatalf("add edge %d: %d %s", i, resp.StatusCode, body)
		}
		var added struct {
			Edge int `json:"edge"`
		}
		if err := json.Unmarshal(body, &added); err != nil {
			t.Fatal(err)
		}
		lastEdge = added.Edge
	}
	resp, body = do(t, "POST", wsURL+"/query", `{"op":"verdict"}`, nil)
	var verdict struct {
		Epoch   uint64 `json:"epoch"`
		Acyclic bool   `json:"acyclic"`
	}
	if err := json.Unmarshal(body, &verdict); err != nil {
		t.Fatal(err)
	}
	if verdict.Acyclic {
		t.Fatal("triangle reported acyclic")
	}
	if resp, body = do(t, "DELETE", fmt.Sprintf("%s/edges/%d", wsURL, lastEdge), "", nil); resp.StatusCode != 200 {
		t.Fatalf("remove edge: %d %s", resp.StatusCode, body)
	}
	resp, body = do(t, "POST", wsURL+"/query", `{"op":"verdict"}`, nil)
	if err := json.Unmarshal(body, &verdict); err != nil {
		t.Fatal(err)
	}
	if !verdict.Acyclic {
		t.Fatal("path A-B-C reported cyclic after breaking the triangle")
	}
	// Epoch pinning on the current epoch succeeds.
	pinned := fmt.Sprintf(`{"op":"verdict","epoch":%d}`, verdict.Epoch)
	if resp, body = do(t, "POST", wsURL+"/query", pinned, nil); resp.StatusCode != 200 {
		t.Fatalf("pinned query: %d %s", resp.StatusCode, body)
	}
}

func TestGracefulDrain(t *testing.T) {
	defer fault.Reset()
	s, ts := newTestServer(t, Config{}, nil)
	fault.Reset()
	fault.Activate(fault.ServerHandle, fault.Injection{
		Kind: fault.KindDelay, Delay: 200 * time.Millisecond, Count: 1,
	})
	inFlight := make(chan int, 1)
	go func() {
		resp, _ := do(t, "POST", ts.URL+"/v1/analyze", schemaBody(fig1Text), nil)
		inFlight <- resp.StatusCode
	}()
	time.Sleep(50 * time.Millisecond) // let the slow request be admitted

	drainDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		drainDone <- s.Drain(ctx)
	}()
	time.Sleep(20 * time.Millisecond) // let Drain flip the gate

	// New work is refused while draining; the health check fails over.
	if resp, body := do(t, "POST", ts.URL+"/v1/analyze", schemaBody(fig1Text), nil); resp.StatusCode != 503 {
		t.Fatalf("request during drain: %d %s", resp.StatusCode, body)
	} else if e := decodeError(t, body); e.Code != CodeDraining {
		t.Fatalf("drain code = %q", e.Code)
	}
	if resp, _ := do(t, "GET", ts.URL+"/healthz", "", nil); resp.StatusCode != 503 {
		t.Fatalf("healthz during drain: %d, want 503", resp.StatusCode)
	}

	// The in-flight request completes and the drain resolves cleanly.
	if err := <-drainDone; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if code := <-inFlight; code != 200 {
		t.Fatalf("in-flight request during drain: %d, want 200", code)
	}
}

func TestDrainTimesOutWithWorkStuck(t *testing.T) {
	defer fault.Reset()
	s, ts := newTestServer(t, Config{}, nil)
	fault.Reset()
	fault.Activate(fault.ServerHandle, fault.Injection{
		Kind: fault.KindDelay, Delay: 500 * time.Millisecond, Count: 1,
	})
	done := make(chan struct{})
	go func() {
		do(t, "POST", ts.URL+"/v1/analyze", schemaBody(fig1Text), nil)
		close(done)
	}()
	time.Sleep(50 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err != context.DeadlineExceeded {
		t.Fatalf("drain with stuck work: %v, want context.DeadlineExceeded", err)
	}
	<-done
}

func TestStatszAndHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{}, nil)
	if resp, body := do(t, "GET", ts.URL+"/healthz", "", nil); resp.StatusCode != 200 || !bytes.Contains(body, []byte("true")) {
		t.Fatalf("healthz: %d %s", resp.StatusCode, body)
	}
	do(t, "POST", ts.URL+"/v1/analyze", schemaBody(fig1Text), nil)
	resp, body := do(t, "GET", ts.URL+"/statsz", "", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("statsz: %d", resp.StatusCode)
	}
	var st Stats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Total != 1 || st.OK != 1 {
		t.Fatalf("stats after one request = %+v", st)
	}
}

// classifyResponse mirrors the /v1/classify wire shape.
type classifyResponse struct {
	Alpha        bool   `json:"alpha"`
	Beta         bool   `json:"beta"`
	Gamma        bool   `json:"gamma"`
	Berge        bool   `json:"berge"`
	Degree       string `json:"degree"`
	Certificates map[string]struct {
		Kind  string `json:"kind"`
		Nodes int    `json:"nodes"`
		Edges int    `json:"edges"`
		Steps int    `json:"steps"`
	} `json:"certificates"`
}

// TestClassifySpectrum pins the spectrum-backed classify endpoint on one
// known schema per rung of the hierarchy: the four verdicts, the degree
// string, and the certificate summary that backs each verdict.
func TestClassifySpectrum(t *testing.T) {
	_, ts := newTestServer(t, Config{}, nil)
	cases := []struct {
		name, schema, degree string
	}{
		{"berge", "A B\nB C", "berge-acyclic"},
		{"gamma", "A B\nA B C", "gamma-acyclic"},
		{"beta", "A B\nB C\nA B C", "beta-acyclic"},
		{"alpha", "A B\nB C\nC A\nA B C", "alpha-acyclic"},
		{"cyclic", triangleText, "cyclic"},
	}
	for _, tc := range cases {
		resp, body := do(t, "POST", ts.URL+"/v1/classify", schemaBody(tc.schema), nil)
		if resp.StatusCode != 200 {
			t.Fatalf("%s: classify: %d %s", tc.name, resp.StatusCode, body)
		}
		var out classifyResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatalf("%s: %v (body %s)", tc.name, err, body)
		}
		if out.Degree != tc.degree {
			t.Errorf("%s: degree = %q, want %q (body %s)", tc.name, out.Degree, tc.degree, body)
		}
		beta, gamma := out.Certificates["beta"], out.Certificates["gamma"]
		if out.Beta {
			if beta.Kind != "elimination-order" || beta.Nodes == 0 {
				t.Errorf("%s: beta certificate = %+v, want a non-empty elimination order", tc.name, beta)
			}
		} else if beta.Kind != "nest-free-core" || beta.Nodes == 0 {
			t.Errorf("%s: beta certificate = %+v, want a non-empty nest-free core", tc.name, beta)
		}
		if out.Gamma {
			if gamma.Kind != "reduction-steps" || gamma.Steps == 0 {
				t.Errorf("%s: gamma certificate = %+v, want a non-empty step sequence", tc.name, gamma)
			}
		} else if gamma.Kind != "irreducible-core" || gamma.Nodes == 0 || gamma.Edges == 0 {
			t.Errorf("%s: gamma certificate = %+v, want a non-empty irreducible core", tc.name, gamma)
		}
	}
}

// TestClassifyLargeSchemaUnderDeadline is the server-scale pin for the
// polynomial path: a 10⁴-edge schema — which the retired MaxClassifyEdges
// cap would have refused with 422 — classifies fully under the default 2s
// deadline.
func TestClassifyLargeSchemaUnderDeadline(t *testing.T) {
	_, ts := newTestServer(t, Config{}, nil)
	h := gen.GammaAcyclic(rand.New(rand.NewSource(7)), 10000, 6000)
	resp, body := do(t, "POST", ts.URL+"/v1/classify", schemaBody(h.Format()), nil)
	if resp.StatusCode != 200 {
		t.Fatalf("classify(10k edges): %d %s", resp.StatusCode, body[:min(len(body), 200)])
	}
	var out classifyResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Alpha || !out.Beta || !out.Gamma {
		t.Fatalf("generated γ-acyclic schema classified %+v", out)
	}
}

// TestStatszIncidents pins the incident ring: a recovered panic's incident
// id must be queryable via /statsz with its request context and stack, and
// via the embedding API.
func TestStatszIncidents(t *testing.T) {
	defer fault.Reset()
	s, ts := newTestServer(t, Config{}, nil)
	fault.Reset()
	fault.Activate(fault.EngineAnalyze, fault.Injection{
		Kind: fault.KindPanic, Panic: "memo shard corrupted", Count: 1,
	})
	resp, body := do(t, "POST", ts.URL+"/v1/analyze", schemaBody("IR1 IR2"),
		map[string]string{"X-Tenant": "acme"})
	if resp.StatusCode != 500 {
		t.Fatalf("armed analyze: %d %s", resp.StatusCode, body)
	}
	id := decodeError(t, body).Incident
	if id == "" {
		t.Fatal("500 without incident id")
	}
	fault.Reset()

	resp, body = do(t, "GET", ts.URL+"/statsz", "", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("statsz: %d", resp.StatusCode)
	}
	var st struct {
		Incidents []Incident `json:"incidents"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Incidents) != 1 {
		t.Fatalf("incidents = %d, want 1", len(st.Incidents))
	}
	inc := st.Incidents[0]
	if inc.ID != id {
		t.Errorf("incident id = %q, want %q (the id from the 500 body)", inc.ID, id)
	}
	if inc.Method != "POST" || inc.Path != "/v1/analyze" || inc.Tenant != "acme" {
		t.Errorf("incident context = %s %s tenant %q, want POST /v1/analyze tenant acme", inc.Method, inc.Path, inc.Tenant)
	}
	if !strings.Contains(inc.Summary, "memo shard corrupted") {
		t.Errorf("incident summary = %q, want the panic value", inc.Summary)
	}
	if inc.Stack == "" || inc.Time.IsZero() {
		t.Errorf("incident missing stack or time: %+v", inc)
	}
	if got := s.Incidents(); len(got) != 1 || got[0].ID != id {
		t.Errorf("Incidents() = %+v, want the same record", got)
	}
}

// TestIncidentRingWraps proves the ring is bounded: after more panics than
// the capacity, /statsz retains exactly incidentRingCap records, newest
// first, with ids still unique.
func TestIncidentRingWraps(t *testing.T) {
	defer fault.Reset()
	s, ts := newTestServer(t, Config{TenantBurst: 2 * incidentRingCap}, nil)
	fault.Reset()
	const storms = incidentRingCap + 5
	fault.Activate(fault.EngineAnalyze, fault.Injection{
		Kind: fault.KindPanic, Panic: "storm", Count: storms,
	})
	var last string
	for i := 0; i < storms; i++ {
		// Unique schema per request so the memo cannot absorb the fault.
		resp, body := do(t, "POST", ts.URL+"/v1/analyze",
			schemaBody(fmt.Sprintf("W%d W%dB", i, i)), nil)
		if resp.StatusCode != 500 {
			t.Fatalf("storm %d: %d %s", i, resp.StatusCode, body)
		}
		last = decodeError(t, body).Incident
	}
	fault.Reset()
	got := s.Incidents()
	if len(got) != incidentRingCap {
		t.Fatalf("ring holds %d, want %d", len(got), incidentRingCap)
	}
	if got[0].ID != last {
		t.Errorf("newest incident = %q, want %q", got[0].ID, last)
	}
	seen := map[string]bool{}
	for _, inc := range got {
		if seen[inc.ID] {
			t.Fatalf("duplicate incident id %q after wrap", inc.ID)
		}
		seen[inc.ID] = true
	}
	assertAlive(t, ts.URL)
}
