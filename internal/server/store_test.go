package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/dynamic"
	"repro/internal/fault"
	"repro/internal/store"
)

// jsonMap decodes a response body into a generic map.
func jsonMap(t *testing.T, body []byte) map[string]any {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("unmarshal %q: %v", body, err)
	}
	return m
}

// addEdge posts one edge and, on 200, mirrors it into the model workspace.
// Returns the edge id and whether the edit was acknowledged.
func addEdge(t *testing.T, ts *httptest2, model *dynamic.Workspace, wsID string, nodes ...string) (int, bool) {
	t.Helper()
	b, _ := json.Marshal(map[string][]string{"nodes": nodes})
	resp, body := do(t, "POST", ts.url+"/v1/workspaces/"+wsID+"/edges", string(b), nil)
	if resp.StatusCode != http.StatusOK {
		return 0, false
	}
	id := int(jsonMap(t, body)["edge"].(float64))
	mid, err := model.AddEdge(nodes...)
	if err != nil {
		t.Fatalf("model AddEdge: %v", err)
	}
	if mid != id {
		t.Fatalf("model edge id %d, server %d", mid, id)
	}
	return id, true
}

// removeEdge deletes one edge and, on 200, mirrors it into the model.
func removeEdge(t *testing.T, ts *httptest2, model *dynamic.Workspace, wsID string, edge int) bool {
	t.Helper()
	resp, _ := do(t, "DELETE", fmt.Sprintf("%s/v1/workspaces/%s/edges/%d", ts.url, wsID, edge), "", nil)
	if resp.StatusCode != http.StatusOK {
		return false
	}
	if err := model.RemoveEdge(edge); err != nil {
		t.Fatalf("model RemoveEdge(%d): %v", edge, err)
	}
	return true
}

// httptest2 is the thin server handle the durability tests thread around.
type httptest2 struct {
	s   *Server
	url string
}

func newDurableServer(t *testing.T, cfg Config) *httptest2 {
	t.Helper()
	s, ts := newTestServer(t, cfg, nil)
	return &httptest2{s: s, url: ts.URL}
}

// assertRecovered opens the session directory cold and checks the recovered
// workspace is observationally identical to the model: epoch, canonical
// content digest, and verdict.
func assertRecovered(t *testing.T, dir string, model *dynamic.Workspace) {
	t.Helper()
	sess, ws, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatalf("recover %s: %v", dir, err)
	}
	defer sess.Close()
	if ws.Epoch() != model.Epoch() {
		t.Fatalf("recovered epoch %d, acknowledged prefix ends at %d", ws.Epoch(), model.Epoch())
	}
	if ws.ContentDigest() != model.ContentDigest() {
		t.Fatalf("recovered digest %v, model %v", ws.ContentDigest(), model.ContentDigest())
	}
	if got, want := ws.Analysis().Verdict(), model.Analysis().Verdict(); got != want {
		t.Fatalf("recovered verdict %v, model %v", got, want)
	}
}

// TestBootRecoverySessions drives a durable server over HTTP, abandons it
// without draining (crash), and boots a second server on the same data
// directory: every workspace must come back at its acknowledged state, and
// fresh workspace ids must continue past the recovered ones.
func TestBootRecoverySessions(t *testing.T) {
	dataDir := t.TempDir()
	ts1 := newDurableServer(t, Config{DataDir: dataDir})

	// ws-1: seeded with the Figure 1 schema, then edited.
	resp, body := do(t, "POST", ts1.url+"/v1/workspaces", schemaBody(fig1Text), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create: %d %s", resp.StatusCode, body)
	}
	created := jsonMap(t, body)
	if created["id"] != "ws-1" {
		t.Fatalf("first workspace id %v", created["id"])
	}
	if created["epoch"].(float64) != 4 {
		t.Fatalf("seeded epoch %v, want 4 (one per schema edge)", created["epoch"])
	}
	model := dynamic.New()
	for _, line := range strings.Split(fig1Text, "\n") {
		if _, err := model.AddEdge(strings.Fields(line)...); err != nil {
			t.Fatal(err)
		}
	}
	id, _ := addEdge(t, ts1, model, "ws-1", "F", "G")
	addEdge(t, ts1, model, "ws-1", "G", "H")
	removeEdge(t, ts1, model, "ws-1", id)

	// ws-2: empty, one edge.
	resp, body = do(t, "POST", ts1.url+"/v1/workspaces", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create ws-2: %d %s", resp.StatusCode, body)
	}
	if jsonMap(t, body)["id"] != "ws-2" {
		t.Fatalf("second workspace id %v", jsonMap(t, body)["id"])
	}
	model2 := dynamic.New()
	addEdge(t, ts1, model2, "ws-2", "X", "Y")

	resp, body = do(t, "GET", ts1.url+"/v1/workspaces/ws-1", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get ws-1: %d %s", resp.StatusCode, body)
	}
	before := jsonMap(t, body)

	// Crash: no Drain, no flush — the WAL alone must carry the state.
	ts2 := newDurableServer(t, Config{DataDir: dataDir})
	resp, body = do(t, "GET", ts2.url+"/v1/workspaces/ws-1", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recovered get ws-1: %d %s", resp.StatusCode, body)
	}
	after := jsonMap(t, body)
	for _, k := range []string{"epoch", "edges", "nodes", "components", "acyclic"} {
		if before[k] != after[k] {
			t.Errorf("ws-1 %s: %v before crash, %v after recovery", k, before[k], after[k])
		}
	}
	resp, body = do(t, "GET", ts2.url+"/v1/workspaces/ws-2", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recovered get ws-2: %d %s", resp.StatusCode, body)
	}
	if got := jsonMap(t, body)["epoch"].(float64); got != float64(model2.Epoch()) {
		t.Errorf("ws-2 epoch %v, want %d", got, model2.Epoch())
	}

	// Id continuity: the next create must not collide with a recovered dir.
	resp, body = do(t, "POST", ts2.url+"/v1/workspaces", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery create: %d %s", resp.StatusCode, body)
	}
	if got := jsonMap(t, body)["id"]; got != "ws-3" {
		t.Errorf("post-recovery workspace id %v, want ws-3", got)
	}

	// The recovered session keeps journaling: edit on server 2, recover cold.
	addEdge(t, ts2, model, "ws-1", "H", "I")
	assertRecovered(t, filepath.Join(dataDir, "ws-1"), model)
}

// TestCrashMatrixRecovery injects every store fault kind at every store fault
// site in the middle of an edit burst, crashes the server (abandons it), and
// asserts recovery lands exactly on the acknowledged prefix: epoch, digest,
// and verdict all agree with a model workspace that mirrored only the edits
// the server answered 200 to.
func TestCrashMatrixRecovery(t *testing.T) {
	defer fault.Reset()
	cases := []struct {
		site string
		inj  fault.Injection
	}{
		{fault.StoreAppend, fault.Injection{Kind: fault.KindError, Err: errors.New("injected: disk full"), After: 7, Count: 2}},
		{fault.StoreAppend, fault.Injection{Kind: fault.KindTorn, After: 9, Count: 1}},
		{fault.StoreAppend, fault.Injection{Kind: fault.KindPanic, Panic: "injected: append", After: 7, Count: 1}},
		{fault.StoreSnapshot, fault.Injection{Kind: fault.KindError, Err: errors.New("injected: snapshot io"), Count: 1}},
		{fault.StoreSnapshot, fault.Injection{Kind: fault.KindTorn, Count: 1}},
		{fault.StoreSnapshot, fault.Injection{Kind: fault.KindPanic, Panic: "injected: snapshot", Count: 1}},
	}
	for i, tc := range cases {
		name := fmt.Sprintf("%s_%d", strings.ReplaceAll(tc.site, ".", "_"), i)
		t.Run(name, func(t *testing.T) {
			fault.Reset()
			dataDir := t.TempDir()
			// A low snapshot threshold makes the burst cross compaction
			// mid-flight, so store.snapshot faults actually fire.
			ts := newDurableServer(t, Config{DataDir: dataDir, SnapshotEvery: 5})
			resp, body := do(t, "POST", ts.url+"/v1/workspaces", "", nil)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("create: %d %s", resp.StatusCode, body)
			}
			model := dynamic.New()

			fault.Activate(tc.site, tc.inj)
			acked, failed := 0, 0
			var live []int
			for e := 0; e < 24; e++ {
				if e%6 == 5 && len(live) > 0 {
					if removeEdge(t, ts, model, "ws-1", live[0]) {
						live = live[1:]
						acked++
					} else {
						failed++
					}
					continue
				}
				id, ok := addEdge(t, ts, model, "ws-1", fmt.Sprintf("n%d", e), fmt.Sprintf("n%d", e+1))
				if ok {
					live = append(live, id)
					acked++
				} else {
					failed++
				}
			}
			if tc.site == fault.StoreAppend && failed == 0 {
				t.Fatalf("append fault never surfaced (%d acked)", acked)
			}
			if fault.Hits(tc.site) == 0 {
				t.Fatalf("fault at %s never fired", tc.site)
			}
			if acked == 0 {
				t.Fatal("no edit acknowledged; burst tells us nothing")
			}
			// Let any in-flight background compaction finish or die before
			// the "crash" so the test isn't racing its own file reads.
			ts.s.FlushSessions()

			fault.Reset()
			assertRecovered(t, filepath.Join(dataDir, "ws-1"), model)
		})
	}
}

// TestDrainFlushesSessions checks the shutdown path: Drain compacts every
// dirty session into a snapshot (reporting per-session outcomes), the
// snapshot alone carries the state, and a second Drain is a no-op.
func TestDrainFlushesSessions(t *testing.T) {
	dataDir := t.TempDir()
	ts := newDurableServer(t, Config{DataDir: dataDir, SnapshotEvery: -1})
	do(t, "POST", ts.url+"/v1/workspaces", "", nil)
	model := dynamic.New()
	for e := 0; e < 8; e++ {
		addEdge(t, ts, model, "ws-1", fmt.Sprintf("a%d", e), fmt.Sprintf("a%d", e+1))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := ts.s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	dir := filepath.Join(dataDir, "ws-1")
	if _, err := os.Stat(filepath.Join(dir, store.SnapshotFile)); err != nil {
		t.Fatalf("drain cut no snapshot: %v", err)
	}
	info, err := store.Verify(dir)
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if info.SnapshotEpoch != model.Epoch() || info.TailRecords != 0 {
		t.Errorf("flush left snapshotEpoch=%d tail=%d, want snapshotEpoch=%d tail=0",
			info.SnapshotEpoch, info.TailRecords, model.Epoch())
	}
	assertRecovered(t, dir, model)
	// Idempotent: everything is already clean and closed.
	if out := ts.s.FlushSessions(); len(out) != 1 || out[0].Error != "" {
		t.Errorf("second flush: %+v", out)
	}
}

// TestDrainDuringInFlightCompaction races the shutdown flush against a slowed
// background compaction: the two serialize on the store's compaction lock and
// no acknowledged edit may be lost.
func TestDrainDuringInFlightCompaction(t *testing.T) {
	defer fault.Reset()
	fault.Reset()
	dataDir := t.TempDir()
	ts := newDurableServer(t, Config{DataDir: dataDir, SnapshotEvery: 4})
	do(t, "POST", ts.url+"/v1/workspaces", "", nil)
	model := dynamic.New()

	// Slow every snapshot cut so the threshold-triggered background
	// compaction is still in flight when Drain's flush arrives.
	fault.Activate(fault.StoreSnapshot, fault.Injection{Kind: fault.KindDelay, Delay: 150 * time.Millisecond})
	for e := 0; e < 10; e++ {
		if _, ok := addEdge(t, ts, model, "ws-1", fmt.Sprintf("b%d", e), fmt.Sprintf("b%d", e+1)); !ok {
			t.Fatalf("edit %d not acknowledged", e)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := ts.s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	fault.Reset()
	assertRecovered(t, filepath.Join(dataDir, "ws-1"), model)
}

// TestDrainReportsFlushFailure: a fault at store.snapshot during the final
// flush must surface in the outcome (and Drain's error), never crash the
// process, and never corrupt what was already durable.
func TestDrainReportsFlushFailure(t *testing.T) {
	defer fault.Reset()
	fault.Reset()
	dataDir := t.TempDir()
	ts := newDurableServer(t, Config{DataDir: dataDir, SnapshotEvery: -1})
	do(t, "POST", ts.url+"/v1/workspaces", "", nil)
	model := dynamic.New()
	addEdge(t, ts, model, "ws-1", "p", "q")

	fault.Activate(fault.StoreSnapshot, fault.Injection{Kind: fault.KindPanic, Panic: "injected: flush"})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	err := ts.s.Drain(ctx)
	if err == nil || !strings.Contains(err.Error(), "injected") {
		t.Fatalf("drain error %v, want the injected flush failure", err)
	}
	fault.Reset()
	// The snapshot never landed, but the WAL did at append time.
	assertRecovered(t, filepath.Join(dataDir, "ws-1"), model)
}

// TestWatchLongPoll exercises the epoch watch endpoint: an already-stale
// cursor answers immediately, a current cursor parks until the deadline
// (200 {"changed":false}) and an edit wakes a parked watcher.
func TestWatchLongPoll(t *testing.T) {
	ts := newDurableServer(t, Config{})
	do(t, "POST", ts.url+"/v1/workspaces", schemaBody("A B"), nil)

	// Cursor behind the current epoch: immediate wake.
	resp, body := do(t, "GET", ts.url+"/v1/ws/ws-1/watch?after=0", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("watch: %d %s", resp.StatusCode, body)
	}
	m := jsonMap(t, body)
	if m["changed"] != true || m["epoch"].(float64) != 1 {
		t.Fatalf("stale cursor: %v", m)
	}

	// Current cursor, nothing happens: the deadline answers changed=false.
	start := time.Now()
	resp, body = do(t, "GET", ts.url+"/v1/workspaces/ws-1/watch", "", map[string]string{"X-Deadline-Ms": "80"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("idle watch: %d %s", resp.StatusCode, body)
	}
	if m := jsonMap(t, body); m["changed"] != false {
		t.Fatalf("idle watch: %v", m)
	}
	if time.Since(start) < 60*time.Millisecond {
		t.Fatal("idle watch returned before its deadline")
	}

	// Parked watcher, concurrent edit: woken with the new epoch.
	type watchResult struct {
		m   map[string]any
		dur time.Duration
	}
	ch := make(chan watchResult, 1)
	go func() {
		s := time.Now()
		_, b := do(t, "GET", ts.url+"/v1/ws/ws-1/watch?after=1", "", map[string]string{"X-Deadline-Ms": "3000"})
		ch <- watchResult{jsonMap(t, b), time.Since(s)}
	}()
	time.Sleep(50 * time.Millisecond)
	b, _ := json.Marshal(map[string][]string{"nodes": {"B", "C"}})
	do(t, "POST", ts.url+"/v1/workspaces/ws-1/edges", string(b), nil)
	r := <-ch
	if r.m["changed"] != true || r.m["epoch"].(float64) != 2 {
		t.Fatalf("woken watch: %v", r.m)
	}
	if r.dur >= 2*time.Second {
		t.Fatalf("watch took %v; it timed out instead of waking", r.dur)
	}

	// Bad cursor: typed 400.
	resp, body = do(t, "GET", ts.url+"/v1/ws/ws-1/watch?after=banana", "", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad cursor: %d %s", resp.StatusCode, body)
	}
}

// TestRespCacheEpochKeyed: identical queries at one epoch hit the cache and
// serve byte-identical bodies; an edit moves the epoch and misses; the entry
// count respects the configured bound; the counters are on /metricsz.
func TestRespCacheEpochKeyed(t *testing.T) {
	ts := newDurableServer(t, Config{RespCacheEntries: 2})
	do(t, "POST", ts.url+"/v1/workspaces", schemaBody(fig1Text), nil)
	query := func(op string) []byte {
		b, _ := json.Marshal(map[string]string{"op": op})
		resp, body := do(t, "POST", ts.url+"/v1/workspaces/ws-1/query", string(b), nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %s: %d %s", op, resp.StatusCode, body)
		}
		return body
	}

	hits0, misses0 := respCacheHits.Value(), respCacheMisses.Value()
	first := query("jointree")
	if got := respCacheMisses.Value() - misses0; got != 1 {
		t.Fatalf("first query: %d misses, want 1", got)
	}
	second := query("jointree")
	if got := respCacheHits.Value() - hits0; got != 1 {
		t.Fatalf("second query: %d hits, want 1", got)
	}
	if string(first) != string(second) {
		t.Fatalf("cache hit served a different body:\n%s\n%s", first, second)
	}

	// An edit bumps the epoch: same op misses (fresh key), and the body
	// reports the new epoch.
	b, _ := json.Marshal(map[string][]string{"nodes": {"F", "G"}})
	do(t, "POST", ts.url+"/v1/workspaces/ws-1/edges", string(b), nil)
	third := query("jointree")
	if m := jsonMap(t, third); m["epoch"].(float64) != 5 {
		t.Fatalf("post-edit cached body has epoch %v, want 5", m["epoch"])
	}
	if got := respCacheMisses.Value() - misses0; got != 2 {
		t.Fatalf("post-edit query: %d misses total, want 2", got)
	}

	// Bound: three distinct keys through a 2-entry cache.
	query("fullreducer")
	if n := ts.s.respCache.len(); n > 2 {
		t.Fatalf("cache holds %d entries, bound is 2", n)
	}

	// verdict is deliberately uncacheable: counters must not move.
	h, ms := respCacheHits.Value(), respCacheMisses.Value()
	query("verdict")
	if respCacheHits.Value() != h || respCacheMisses.Value() != ms {
		t.Fatal("verdict consulted the response cache")
	}

	resp, metrics := do(t, "GET", ts.url+"/metricsz", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metricsz: %d", resp.StatusCode)
	}
	for _, name := range []string{"server_respcache_hits_total", "server_respcache_misses_total"} {
		if !strings.Contains(string(metrics), name) {
			t.Errorf("/metricsz missing %s", name)
		}
	}
}
