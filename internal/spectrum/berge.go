package spectrum

import (
	"context"

	"repro/internal/hypergraph"
)

// Berge reports Berge-acyclicity: whether the bipartite node–edge incidence
// graph is a forest. A union-find over nodes and edges detects the first
// incidence that closes a cycle; multi-incidence of a node pair in two edges
// shows up the same way, so no separate multiplicity check is needed.
func Berge(ctx context.Context, h *hypergraph.Hypergraph) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	t := &ticker{ctx: ctx}
	covered := h.CoveredNodes()
	dense := make(map[int32]int32, covered.Len())
	covered.ForEach(func(id int) {
		dense[int32(id)] = int32(len(dense))
	})
	n, m := len(dense), h.NumEdges()
	// Items 0..n-1 are nodes, n..n+m-1 are edges.
	parent := make([]int32, n+m)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	for e := 0; e < m; e++ {
		ev := h.EdgeView(e)
		if err := t.tick(ev.Len()); err != nil {
			return false, err
		}
		cyclic := false
		ev.ForEach(func(id int) {
			if cyclic {
				return
			}
			a, b := find(dense[int32(id)]), find(int32(n+e))
			if a == b {
				cyclic = true
				return
			}
			parent[a] = b
		})
		if cyclic {
			return false, nil
		}
	}
	return true, nil
}
