package spectrum

import (
	"context"
	"sort"

	"repro/internal/hypergraph"
)

// BetaResult is the verdict of the polynomial β tester with its certificate:
// when Acyclic, Order is a nest-point elimination order covering every node
// that appears in some edge (eliminating in that order empties the
// hypergraph); when not, Core is a non-empty set of nodes whose induced
// sub-hypergraph has no nest point — a locally-checkable obstruction, since
// β-acyclicity is hereditary under node deletion and every non-empty
// β-acyclic hypergraph has a nest point.
type BetaResult struct {
	Acyclic bool
	Order   []int32
	Core    []int32
}

// Beta decides β-acyclicity by greedy nest-point elimination
// (Brault-Baron). A node is a nest point when its incident live edges form a
// chain under ⊆; elimination is confluent, so running any maximal sequence
// decides the class. The worklist re-examines only nodes that shared an edge
// with an eliminated node — removal elsewhere cannot create a new chain among
// untouched incident-edge families.
func Beta(ctx context.Context, h *hypergraph.Hypergraph) (*BetaResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	st, err := newBetaState(ctx, h)
	if err != nil {
		return nil, err
	}
	return st.run()
}

// betaState is the live view of the hypergraph during elimination: edge
// member lists (sorted), per-node incidence lists, and alive markers with
// counters. Dead members/edges are filtered lazily on traversal.
type betaState struct {
	t        *ticker
	members  [][]int32 // edge -> sorted node ids, as loaded
	incident [][]int32 // node -> edge indices, as loaded
	nodeOf   []int32   // dense index -> original node id
	deadV    []bool    // dense node index
	deadE    []bool
	edgeLen  []int // live member count per edge
	liveV    int
	inQueue  []bool
	queue    []int32 // dense node indices pending a nest-point check
}

func newBetaState(ctx context.Context, h *hypergraph.Hypergraph) (*betaState, error) {
	st := &betaState{t: &ticker{ctx: ctx}}
	m := h.NumEdges()
	// Dense-index the nodes actually covered by edges; isolated universe
	// nodes are vacuously eliminable and never constrain β.
	covered := h.CoveredNodes()
	dense := make(map[int32]int32, covered.Len())
	covered.ForEach(func(id int) {
		dense[int32(id)] = int32(len(st.nodeOf))
		st.nodeOf = append(st.nodeOf, int32(id))
	})
	n := len(st.nodeOf)
	st.members = make([][]int32, m)
	st.incident = make([][]int32, n)
	st.edgeLen = make([]int, m)
	for e := 0; e < m; e++ {
		ids := h.EdgeView(e).IDs()
		mem := make([]int32, len(ids))
		for i, id := range ids {
			mem[i] = dense[id]
		}
		sort.Slice(mem, func(i, j int) bool { return mem[i] < mem[j] })
		st.members[e] = mem
		st.edgeLen[e] = len(mem)
		for _, v := range mem {
			st.incident[v] = append(st.incident[v], int32(e))
		}
		if err := st.t.tick(len(mem)); err != nil {
			return nil, err
		}
	}
	st.deadV = make([]bool, n)
	st.deadE = make([]bool, m)
	st.liveV = n
	st.inQueue = make([]bool, n)
	st.queue = make([]int32, n)
	for v := range st.queue {
		st.queue[v] = int32(v)
		st.inQueue[v] = true
	}
	return st, nil
}

func (st *betaState) run() (*BetaResult, error) {
	order := make([]int32, 0, len(st.nodeOf))
	for len(st.queue) > 0 {
		v := st.queue[0]
		st.queue = st.queue[1:]
		st.inQueue[v] = false
		if st.deadV[v] {
			continue
		}
		nest, err := st.isNestPoint(v)
		if err != nil {
			return nil, err
		}
		if !nest {
			continue
		}
		if err := st.eliminate(v); err != nil {
			return nil, err
		}
		order = append(order, st.nodeOf[v])
	}
	if st.liveV == 0 {
		return &BetaResult{Acyclic: true, Order: order}, nil
	}
	core := make([]int32, 0, st.liveV)
	for v, dead := range st.deadV {
		if !dead {
			core = append(core, st.nodeOf[v])
		}
	}
	return &BetaResult{Core: core}, nil
}

// isNestPoint reports whether v's live incident edges form a ⊆-chain.
// Sorting them by live length makes chain-ness equivalent to each edge
// containing its predecessor, so the check is a sequence of sorted-merge
// subset tests.
func (st *betaState) isNestPoint(v int32) (bool, error) {
	live := st.liveIncident(v)
	if len(live) <= 1 {
		return true, nil
	}
	sort.Slice(live, func(i, j int) bool { return st.edgeLen[live[i]] < st.edgeLen[live[j]] })
	for i := 0; i+1 < len(live); i++ {
		ok, err := st.subset(live[i], live[i+1])
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

// liveIncident compacts v's incidence list in place, dropping dead edges.
func (st *betaState) liveIncident(v int32) []int32 {
	inc := st.incident[v][:0]
	for _, e := range st.incident[v] {
		if !st.deadE[e] {
			inc = append(inc, e)
		}
	}
	st.incident[v] = inc
	return inc
}

// subset reports whether edge a's live members are all live members of edge
// b, by merging the two sorted lists and skipping dead nodes.
func (st *betaState) subset(a, b int32) (bool, error) {
	am, bm := st.members[a], st.members[b]
	if err := st.t.tick(len(am) + len(bm)); err != nil {
		return false, err
	}
	j := 0
	for _, x := range am {
		if st.deadV[x] {
			continue
		}
		for j < len(bm) && (st.deadV[bm[j]] || bm[j] < x) {
			j++
		}
		if j == len(bm) || bm[j] != x {
			return false, nil
		}
		j++
	}
	return true, nil
}

// eliminate removes node v, killing edges that empty out and re-enqueueing
// every node that shared an edge with v — the only nodes whose incident
// families changed.
func (st *betaState) eliminate(v int32) error {
	st.deadV[v] = true
	st.liveV--
	for _, e := range st.liveIncident(v) {
		st.edgeLen[e]--
		if st.edgeLen[e] == 0 {
			st.deadE[e] = true
		}
		for _, u := range st.members[e] {
			if !st.deadV[u] && !st.inQueue[u] {
				st.inQueue[u] = true
				st.queue = append(st.queue, u)
			}
		}
		if err := st.t.tick(len(st.members[e])); err != nil {
			return err
		}
	}
	return nil
}
