package spectrum

import (
	"fmt"

	"repro/internal/hypergraph"
)

// The checkers below validate certificates independently of the testers:
// they rebuild their own view of the hypergraph, replay accepting runs step
// by step against the rule preconditions, and confirm rejecting cores rule
// by rule straight from the definitions. They share no state or search
// logic with beta.go/gamma.go, so an agreeing pair is two separate
// derivations of the same verdict.

// checkView is a naive mutable copy of the hypergraph used for replay:
// edge member sets and node incidence sets as maps, no worklists, no
// signatures.
type checkView struct {
	members  []map[int32]bool // edge index -> live original node ids
	incident map[int32]map[int32]bool
}

func newCheckView(h *hypergraph.Hypergraph) *checkView {
	cv := &checkView{
		members:  make([]map[int32]bool, h.NumEdges()),
		incident: make(map[int32]map[int32]bool),
	}
	for e := 0; e < h.NumEdges(); e++ {
		set := make(map[int32]bool)
		h.EdgeView(e).ForEach(func(id int) {
			set[int32(id)] = true
			if cv.incident[int32(id)] == nil {
				cv.incident[int32(id)] = make(map[int32]bool)
			}
			cv.incident[int32(id)][int32(e)] = true
		})
		cv.members[e] = set
	}
	return cv
}

func (cv *checkView) removeNode(v int32) {
	for e := range cv.incident[v] {
		delete(cv.members[e], v)
	}
	delete(cv.incident, v)
}

func (cv *checkView) removeEdge(e int32) {
	for v := range cv.members[e] {
		delete(cv.incident[v], e)
	}
	cv.members[e] = nil
}

func sameSet(a, b map[int32]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for x := range a {
		if !b[x] {
			return false
		}
	}
	return true
}

// VerifyBeta validates a β certificate against h. For an accepting result it
// replays the elimination order, requiring each node to be a nest point
// (live incident edges pairwise ⊆-comparable) at its turn and the residual
// to be empty afterwards. For a rejecting result it requires the core to be
// non-empty and checks that the node-induced sub-hypergraph on the core has
// no nest point at all.
func VerifyBeta(h *hypergraph.Hypergraph, r *BetaResult) error {
	if r == nil {
		return fmt.Errorf("spectrum: nil beta result")
	}
	if r.Acyclic {
		cv := newCheckView(h)
		seen := make(map[int32]bool, len(r.Order))
		for i, v := range r.Order {
			if seen[v] {
				return fmt.Errorf("spectrum: beta order repeats node %d", v)
			}
			seen[v] = true
			if cv.incident[v] == nil {
				return fmt.Errorf("spectrum: beta order step %d names unknown or uncovered node %d", i, v)
			}
			if !chainIncident(cv, v) {
				return fmt.Errorf("spectrum: beta order step %d: node %d is not a nest point", i, v)
			}
			cv.removeNode(v)
		}
		for v, inc := range cv.incident {
			if len(inc) > 0 {
				return fmt.Errorf("spectrum: beta order leaves node %d live", v)
			}
		}
		return nil
	}
	if len(r.Core) == 0 {
		return fmt.Errorf("spectrum: rejecting beta result with empty core")
	}
	// Induce on the core: drop every node outside it, then demand that no
	// core node is a nest point of the residual.
	cv := newCheckView(h)
	inCore := make(map[int32]bool, len(r.Core))
	for _, v := range r.Core {
		if cv.incident[v] == nil {
			return fmt.Errorf("spectrum: beta core names unknown or uncovered node %d", v)
		}
		inCore[v] = true
	}
	for v := range cv.incident {
		if !inCore[v] {
			cv.removeNode(v)
		}
	}
	for _, v := range r.Core {
		if chainIncident(cv, v) {
			return fmt.Errorf("spectrum: beta core node %d is still a nest point", v)
		}
	}
	return nil
}

// chainIncident reports whether v's live incident edges are pairwise
// ⊆-comparable — the nest-point condition, checked quadratically from the
// definition.
func chainIncident(cv *checkView, v int32) bool {
	edges := make([]map[int32]bool, 0, len(cv.incident[v]))
	for e := range cv.incident[v] {
		if len(cv.members[e]) > 0 {
			edges = append(edges, cv.members[e])
		}
	}
	for i := range edges {
		for j := i + 1; j < len(edges); j++ {
			if !subsetOf(edges[i], edges[j]) && !subsetOf(edges[j], edges[i]) {
				return false
			}
		}
	}
	return true
}

func subsetOf(a, b map[int32]bool) bool {
	for x := range a {
		if !b[x] {
			return false
		}
	}
	return true
}

// VerifyGamma validates a γ certificate against h. For an accepting result
// it replays the step sequence, checking each rule's precondition against
// the live residual (leaf node in ≤1 live edge; twin node sharing its exact
// live edge set with the named witness; leaf edge with ≤1 live node; twin
// edge sharing its exact live node set), then requires the residual to be
// empty. For a rejecting result it requires a non-empty core and checks
// irreducibility: restricted to the core, no node and no edge satisfies any
// rule.
func VerifyGamma(h *hypergraph.Hypergraph, r *GammaResult) error {
	if r == nil {
		return fmt.Errorf("spectrum: nil gamma result")
	}
	if r.Acyclic {
		return verifyGammaSteps(h, r.Steps)
	}
	return verifyGammaCore(h, r)
}

func verifyGammaSteps(h *hypergraph.Hypergraph, steps []Step) error {
	cv := newCheckView(h)
	deadE := make([]bool, h.NumEdges())
	for i, s := range steps {
		switch s.Kind {
		case StepLeafNode:
			inc := cv.incident[s.ID]
			if inc == nil {
				return fmt.Errorf("spectrum: gamma step %d deletes dead node %d", i, s.ID)
			}
			if len(inc) > 1 {
				return fmt.Errorf("spectrum: gamma step %d: node %d is in %d live edges, not a leaf", i, s.ID, len(inc))
			}
			cv.removeNode(s.ID)
		case StepTwinNode:
			inc, winc := cv.incident[s.ID], cv.incident[s.Twin]
			if inc == nil || winc == nil {
				return fmt.Errorf("spectrum: gamma step %d: twin-node pair (%d,%d) not both live", i, s.ID, s.Twin)
			}
			if s.ID == s.Twin || !sameSet(inc, winc) {
				return fmt.Errorf("spectrum: gamma step %d: nodes %d and %d are not false twins", i, s.ID, s.Twin)
			}
			cv.removeNode(s.ID)
		case StepLeafEdge:
			if int(s.ID) < 0 || int(s.ID) >= len(deadE) || deadE[s.ID] {
				return fmt.Errorf("spectrum: gamma step %d deletes dead edge %d", i, s.ID)
			}
			if len(cv.members[s.ID]) > 1 {
				return fmt.Errorf("spectrum: gamma step %d: edge %d has %d live nodes, not a leaf", i, s.ID, len(cv.members[s.ID]))
			}
			deadE[s.ID] = true
			cv.removeEdge(s.ID)
		case StepTwinEdge:
			if int(s.ID) < 0 || int(s.ID) >= len(deadE) || deadE[s.ID] ||
				int(s.Twin) < 0 || int(s.Twin) >= len(deadE) || deadE[s.Twin] {
				return fmt.Errorf("spectrum: gamma step %d: twin-edge pair (%d,%d) not both live", i, s.ID, s.Twin)
			}
			if s.ID == s.Twin || !sameSet(cv.members[s.ID], cv.members[s.Twin]) {
				return fmt.Errorf("spectrum: gamma step %d: edges %d and %d are not false twins", i, s.ID, s.Twin)
			}
			deadE[s.ID] = true
			cv.removeEdge(s.ID)
		default:
			return fmt.Errorf("spectrum: gamma step %d has unknown kind %d", i, s.Kind)
		}
	}
	for v, inc := range cv.incident {
		if inc != nil {
			return fmt.Errorf("spectrum: gamma steps leave node %d live", v)
		}
	}
	for e, dead := range deadE {
		if !dead {
			return fmt.Errorf("spectrum: gamma steps leave edge %d live", e)
		}
	}
	return nil
}

func verifyGammaCore(h *hypergraph.Hypergraph, r *GammaResult) error {
	if len(r.CoreNodes) == 0 && len(r.CoreEdges) == 0 {
		return fmt.Errorf("spectrum: rejecting gamma result with empty core")
	}
	cv := newCheckView(h)
	inCore := make(map[int32]bool, len(r.CoreNodes))
	for _, v := range r.CoreNodes {
		if cv.incident[v] == nil {
			return fmt.Errorf("spectrum: gamma core names unknown or uncovered node %d", v)
		}
		inCore[v] = true
	}
	coreEdge := make([]bool, h.NumEdges())
	for _, e := range r.CoreEdges {
		if int(e) < 0 || int(e) >= len(coreEdge) {
			return fmt.Errorf("spectrum: gamma core names unknown edge %d", e)
		}
		coreEdge[e] = true
	}
	// Restrict to the core.
	for v := range cv.incident {
		if !inCore[v] {
			cv.removeNode(v)
		}
	}
	for e := range cv.members {
		if !coreEdge[e] {
			cv.removeEdge(int32(e))
		}
	}
	// Irreducibility: no rule applies.
	nodes := make([]int32, 0, len(inCore))
	for v := range inCore {
		nodes = append(nodes, v)
	}
	for i, v := range nodes {
		if len(cv.incident[v]) <= 1 {
			return fmt.Errorf("spectrum: gamma core node %d is a leaf", v)
		}
		for _, u := range nodes[i+1:] {
			if sameSet(cv.incident[v], cv.incident[u]) {
				return fmt.Errorf("spectrum: gamma core nodes %d and %d are false twins", v, u)
			}
		}
	}
	for i, e := range r.CoreEdges {
		if len(cv.members[e]) <= 1 {
			return fmt.Errorf("spectrum: gamma core edge %d is a leaf", e)
		}
		for _, f := range r.CoreEdges[i+1:] {
			if sameSet(cv.members[e], cv.members[f]) {
				return fmt.Errorf("spectrum: gamma core edges %d and %d are false twins", e, f)
			}
		}
	}
	return nil
}
