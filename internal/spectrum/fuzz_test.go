package spectrum

import (
	"context"
	"testing"

	"repro/internal/acyclic"
	"repro/internal/hypergraph"
)

// FuzzSpectrum interprets the fuzz input as a hypergraph — one byte per
// edge slot, the low bits selecting up to 6 nodes from an 6-node pool — and
// asserts the two properties the subsystem stands on: the polynomial
// β/γ/Berge verdicts coincide with the exponential / independent
// specifications in internal/acyclic, and both certificates pass the
// independent checker. Sizes stay small so the exponential γ search
// terminates fast.
func FuzzSpectrum(f *testing.F) {
	f.Add([]byte{0x03, 0x06, 0x07})       // ab, bc, abc: beta, not gamma
	f.Add([]byte{0x03, 0x06, 0x05, 0x07}) // ab, bc, ca, abc: alpha, not beta
	f.Add([]byte{0x03, 0x06, 0x0c})       // path: berge
	f.Add([]byte{0x03, 0x06, 0x05})       // triangle: cyclic
	f.Fuzz(func(t *testing.T, data []byte) {
		const maxEdges = 10
		var edges [][]int32
		for i := 0; i < len(data) && len(edges) < maxEdges; i++ {
			var e []int32
			for b := 0; b < 6; b++ {
				if data[i]&(1<<b) != 0 {
					e = append(e, int32(b))
				}
			}
			if len(e) > 0 {
				edges = append(edges, e)
			}
		}
		h := hypergraph.FromIDs(6, edges)
		res, err := Classify(context.Background(), h)
		if err != nil {
			t.Fatalf("Classify: %v", err)
		}
		cl := acyclic.Classify(h)
		if res.Alpha != cl.Alpha || res.Beta.Acyclic != cl.Beta ||
			res.Gamma.Acyclic != cl.Gamma || res.Berge != cl.Berge {
			t.Fatalf("verdict mismatch: spectrum=(α%v β%v γ%v B%v) spec=%v\n%s",
				res.Alpha, res.Beta.Acyclic, res.Gamma.Acyclic, res.Berge, cl, h.Format())
		}
		if err := VerifyBeta(h, res.Beta); err != nil {
			t.Fatalf("beta certificate rejected: %v\n%s", err, h.Format())
		}
		if err := VerifyGamma(h, res.Gamma); err != nil {
			t.Fatalf("gamma certificate rejected: %v\n%s", err, h.Format())
		}
	})
}
