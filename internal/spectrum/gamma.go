package spectrum

import (
	"context"
	"sort"

	"repro/internal/hypergraph"
)

// StepKind names one rule of the γ reduction.
type StepKind uint8

const (
	// StepLeafNode deletes a node contained in at most one live edge.
	StepLeafNode StepKind = iota
	// StepTwinNode deletes a node whose live edge set equals another live
	// node's (a false twin).
	StepTwinNode
	// StepLeafEdge deletes an edge containing at most one live node.
	StepLeafEdge
	// StepTwinEdge deletes an edge whose live node set equals another live
	// edge's.
	StepTwinEdge
)

// String renders the rule name.
func (k StepKind) String() string {
	switch k {
	case StepLeafNode:
		return "leaf-node"
	case StepTwinNode:
		return "twin-node"
	case StepLeafEdge:
		return "leaf-edge"
	case StepTwinEdge:
		return "twin-edge"
	default:
		return "unknown"
	}
}

// Step is one application of a reduction rule. ID is the deleted node id or
// edge index; for twin rules Twin is the surviving witness with the
// identical live incidence (node id or edge index respectively).
type Step struct {
	Kind StepKind
	ID   int32
	Twin int32
}

// GammaResult is the verdict of the polynomial γ tester with its
// certificate: when Acyclic, Steps is a reduction sequence that deletes
// every covered node and every edge; when not, CoreNodes/CoreEdges is the
// non-empty irreducible residual — no rule applies to it, which refutes
// γ-acyclicity because the class is hereditary under node and edge deletion
// and every non-empty γ-acyclic hypergraph admits a step.
type GammaResult struct {
	Acyclic   bool
	Steps     []Step
	CoreNodes []int32
	CoreEdges []int32
}

// Gamma decides γ-acyclicity by the D'Atri–Moscarini reduction: repeatedly
// delete leaf nodes, false-twin nodes, leaf edges, and false-twin edges
// until nothing applies; the hypergraph is γ-acyclic iff the residual is
// empty. Twin detection hashes live incidence lists into signature buckets
// and verifies candidates by exact comparison, so collisions cost compares
// but never a missed twin; the dirty worklist re-examines an item only when
// its live incidence changed.
func Gamma(ctx context.Context, h *hypergraph.Hypergraph) (*GammaResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	st, err := newGammaState(ctx, h)
	if err != nil {
		return nil, err
	}
	return st.run()
}

// item addresses a node (kind 0) or an edge (kind 1) in the worklist.
type gItem struct {
	kind uint8
	id   int32
}

type gammaState struct {
	t        *ticker
	members  [][]int32 // edge -> sorted dense node ids
	incident [][]int32 // dense node -> sorted edge indices
	nodeOf   []int32   // dense index -> original node id
	deadV    []bool
	deadE    []bool
	vDeg     []int // live edge count per node
	eLen     []int // live node count per edge
	liveV    int
	liveE    int
	inQueue  [][]bool // [kind][id]
	queue    []gItem
	// Signature buckets: FNV-64 over the live incidence list -> candidate
	// ids. Entries go stale when items die or their incidence changes;
	// verification filters them out.
	vBuckets map[uint64][]int32
	eBuckets map[uint64][]int32
	steps    []Step
}

func newGammaState(ctx context.Context, h *hypergraph.Hypergraph) (*gammaState, error) {
	st := &gammaState{t: &ticker{ctx: ctx}}
	m := h.NumEdges()
	covered := h.CoveredNodes()
	dense := make(map[int32]int32, covered.Len())
	covered.ForEach(func(id int) {
		dense[int32(id)] = int32(len(st.nodeOf))
		st.nodeOf = append(st.nodeOf, int32(id))
	})
	n := len(st.nodeOf)
	st.members = make([][]int32, m)
	st.incident = make([][]int32, n)
	st.eLen = make([]int, m)
	st.vDeg = make([]int, n)
	for e := 0; e < m; e++ {
		ids := h.EdgeView(e).IDs()
		mem := make([]int32, len(ids))
		for i, id := range ids {
			mem[i] = dense[id]
		}
		sort.Slice(mem, func(i, j int) bool { return mem[i] < mem[j] })
		st.members[e] = mem
		st.eLen[e] = len(mem)
		for _, v := range mem {
			st.incident[v] = append(st.incident[v], int32(e))
			st.vDeg[v]++
		}
		if err := st.t.tick(len(mem)); err != nil {
			return nil, err
		}
	}
	// Edge loading appends in edge order, so incidence lists are sorted.
	st.deadV = make([]bool, n)
	st.deadE = make([]bool, m)
	st.liveV, st.liveE = n, m
	st.inQueue = [][]bool{make([]bool, n), make([]bool, m)}
	st.vBuckets = make(map[uint64][]int32, n)
	st.eBuckets = make(map[uint64][]int32, m)
	st.queue = make([]gItem, 0, n+m)
	for v := 0; v < n; v++ {
		st.enqueue(gItem{0, int32(v)})
	}
	for e := 0; e < m; e++ {
		st.enqueue(gItem{1, int32(e)})
	}
	return st, nil
}

func (st *gammaState) enqueue(it gItem) {
	if !st.inQueue[it.kind][it.id] {
		st.inQueue[it.kind][it.id] = true
		st.queue = append(st.queue, it)
	}
}

func (st *gammaState) run() (*GammaResult, error) {
	for len(st.queue) > 0 {
		it := st.queue[0]
		st.queue = st.queue[1:]
		st.inQueue[it.kind][it.id] = false
		var err error
		if it.kind == 0 {
			err = st.tryNode(it.id)
		} else {
			err = st.tryEdge(it.id)
		}
		if err != nil {
			return nil, err
		}
	}
	if st.liveV == 0 && st.liveE == 0 {
		return &GammaResult{Acyclic: true, Steps: st.steps}, nil
	}
	res := &GammaResult{}
	for v, dead := range st.deadV {
		if !dead {
			res.CoreNodes = append(res.CoreNodes, st.nodeOf[v])
		}
	}
	for e, dead := range st.deadE {
		if !dead {
			res.CoreEdges = append(res.CoreEdges, int32(e))
		}
	}
	return res, nil
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvMix(h uint64, x int32) uint64 {
	h ^= uint64(uint32(x))
	return h * fnvPrime
}

// liveEdgesOf compacts and returns v's live incidence list (kept sorted).
func (st *gammaState) liveEdgesOf(v int32) []int32 {
	inc := st.incident[v][:0]
	for _, e := range st.incident[v] {
		if !st.deadE[e] {
			inc = append(inc, e)
		}
	}
	st.incident[v] = inc
	return inc
}

// liveNodesOf compacts and returns e's live member list (kept sorted).
func (st *gammaState) liveNodesOf(e int32) []int32 {
	mem := st.members[e][:0]
	for _, v := range st.members[e] {
		if !st.deadV[v] {
			mem = append(mem, v)
		}
	}
	st.members[e] = mem
	return mem
}

// tryNode applies the first node rule that fits v: leaf (≤1 live edge) or
// false twin (identical live edge list as a surviving bucket candidate).
func (st *gammaState) tryNode(v int32) error {
	if st.deadV[v] {
		return nil
	}
	live := st.liveEdgesOf(v)
	if err := st.t.tick(len(live) + 1); err != nil {
		return err
	}
	if len(live) <= 1 {
		return st.deleteNode(v, Step{Kind: StepLeafNode, ID: st.nodeOf[v]})
	}
	sig := uint64(fnvOffset)
	for _, e := range live {
		sig = fnvMix(sig, e)
	}
	for _, u := range st.vBuckets[sig] {
		if u == v || st.deadV[u] {
			continue
		}
		same, err := st.sameList(st.liveEdgesOf(u), live)
		if err != nil {
			return err
		}
		if same {
			return st.deleteNode(v, Step{Kind: StepTwinNode, ID: st.nodeOf[v], Twin: st.nodeOf[u]})
		}
	}
	// Not reducible now; park v under its current signature so a future
	// twin (processed later with the same incidence) finds it.
	st.vBuckets[sig] = append(st.vBuckets[sig], v)
	return nil
}

// tryEdge applies the first edge rule that fits e: leaf (≤1 live node) or
// false twin (identical live node list as a surviving bucket candidate).
func (st *gammaState) tryEdge(e int32) error {
	if st.deadE[e] {
		return nil
	}
	live := st.liveNodesOf(e)
	if err := st.t.tick(len(live) + 1); err != nil {
		return err
	}
	if len(live) <= 1 {
		return st.deleteEdge(e, Step{Kind: StepLeafEdge, ID: e})
	}
	sig := uint64(fnvOffset)
	for _, v := range live {
		sig = fnvMix(sig, v)
	}
	for _, f := range st.eBuckets[sig] {
		if f == e || st.deadE[f] {
			continue
		}
		same, err := st.sameList(st.liveNodesOf(f), live)
		if err != nil {
			return err
		}
		if same {
			return st.deleteEdge(e, Step{Kind: StepTwinEdge, ID: e, Twin: f})
		}
	}
	st.eBuckets[sig] = append(st.eBuckets[sig], e)
	return nil
}

func (st *gammaState) sameList(a, b []int32) (bool, error) {
	if err := st.t.tick(len(a)); err != nil {
		return false, err
	}
	if len(a) != len(b) {
		return false, nil
	}
	for i := range a {
		if a[i] != b[i] {
			return false, nil
		}
	}
	return true, nil
}

// deleteNode kills v and dirties the edges it lived in (their member lists
// changed) plus, transitively via the queue, anything those edges affect.
func (st *gammaState) deleteNode(v int32, step Step) error {
	st.deadV[v] = true
	st.liveV--
	st.steps = append(st.steps, step)
	for _, e := range st.incident[v] {
		if st.deadE[e] {
			continue
		}
		st.eLen[e]--
		st.enqueue(gItem{1, e})
		// The edge's surviving members may now be twins/leaves of each
		// other, so they go dirty too.
		for _, u := range st.members[e] {
			if !st.deadV[u] && u != v {
				st.enqueue(gItem{0, u})
			}
		}
		if err := st.t.tick(len(st.members[e])); err != nil {
			return err
		}
	}
	return nil
}

// deleteEdge kills e and dirties its members (their incidence lists
// changed) plus the other edges those members belong to.
func (st *gammaState) deleteEdge(e int32, step Step) error {
	st.deadE[e] = true
	st.liveE--
	st.steps = append(st.steps, step)
	for _, v := range st.members[e] {
		if st.deadV[v] {
			continue
		}
		st.vDeg[v]--
		st.enqueue(gItem{0, v})
		for _, f := range st.incident[v] {
			if !st.deadE[f] && f != e {
				st.enqueue(gItem{1, f})
			}
		}
		if err := st.t.tick(len(st.incident[v])); err != nil {
			return err
		}
	}
	return nil
}
