// Package spectrum decides the full acyclicity spectrum of a hypergraph in
// polynomial time, with locally-checkable certificates.
//
// The repo's core (internal/mcs) decides α-acyclicity — the paper's notion —
// in linear time. Fagin's hierarchy refines it:
//
//	Berge-acyclic ⊂ γ-acyclic ⊂ β-acyclic ⊂ α-acyclic
//
// internal/acyclic keeps the literal, exponential definition-based testers
// for β and γ as executable specifications; this package provides the
// polynomial deciders that replace them everywhere a verdict is served:
//
//   - β-acyclicity via nest-point elimination (Brault-Baron, "Hypergraph
//     Acyclicity Revisited"): a node is a nest point when its incident edges
//     form a chain under ⊆; a hypergraph is β-acyclic iff repeatedly deleting
//     nest points empties it. Elimination is confluent, so one greedy maximal
//     run decides the class. The accepting certificate is the elimination
//     order; the rejecting certificate is the nest-free core — the non-empty
//     residual in which no node is a nest point (β-acyclicity is hereditary
//     under node deletion, and every non-empty β-acyclic hypergraph has a
//     nest point, so a nest-free core is a concrete obstruction).
//
//   - γ-acyclicity via the D'Atri–Moscarini reduction (the Bachman-diagram
//     characterization Fagin proved equivalent, in the incremental form
//     Leitert's generator inverts): repeatedly delete a leaf node (in at most
//     one live edge), a false-twin node (same live edges as another node), a
//     leaf edge (at most one live node), or a false-twin edge (same live
//     nodes as another edge); the hypergraph is γ-acyclic iff everything can
//     be deleted. The accepting certificate is the step sequence; the
//     rejecting certificate is the irreducible core (γ-acyclicity is
//     hereditary under node and edge deletion, and every non-empty γ-acyclic
//     hypergraph admits a reduction step).
//
//   - Berge-acyclicity via a union-find pass over the node–edge incidence
//     graph (Berge-acyclic iff the incidence graph is a forest).
//
// Every tester observes ctx every ~4096 work units, so server deadlines
// reach mid-traversal — the property that lets the serving layer classify
// 10⁴-edge schemas under its default deadline instead of refusing them.
//
// Certificates are validated by independent checkers (VerifyBeta,
// VerifyGamma) that share no state or search logic with the testers: they
// replay accepting runs step by step against the rule preconditions, and
// confirm rejecting cores rule by rule from the definitions. The
// differential suite additionally pins every verdict to the exponential
// specifications of internal/acyclic on the exhaustive small corpus and the
// generator corpus (including gen.GammaAcyclic instances).
package spectrum

import (
	"context"

	"repro/internal/hypergraph"
	"repro/internal/mcs"
)

// Degree is a rung of the acyclicity hierarchy. Higher degrees are strictly
// stronger: DegreeGamma implies β- and α-acyclicity, and so on.
type Degree int

const (
	// DegreeCyclic marks hypergraphs that are not even α-acyclic.
	DegreeCyclic Degree = iota
	// DegreeAlpha is α-acyclic (GYO-reducible) but not β-acyclic.
	DegreeAlpha
	// DegreeBeta is β-acyclic (every edge subfamily α-acyclic) but not
	// γ-acyclic.
	DegreeBeta
	// DegreeGamma is γ-acyclic (no Fagin γ-cycle) but not Berge-acyclic.
	DegreeGamma
	// DegreeBerge is Berge-acyclic: the node–edge incidence graph is a
	// forest.
	DegreeBerge
)

// String renders the degree as its class name.
func (d Degree) String() string {
	switch d {
	case DegreeAlpha:
		return "alpha-acyclic"
	case DegreeBeta:
		return "beta-acyclic"
	case DegreeGamma:
		return "gamma-acyclic"
	case DegreeBerge:
		return "berge-acyclic"
	default:
		return "cyclic"
	}
}

// Result is a full spectrum classification: the per-class verdicts with
// their certificates, and the overall degree — the longest true prefix of
// α ⊇ β ⊇ γ ⊇ Berge (the testers are independent, so the degree is defined
// conservatively rather than trusting any single one).
type Result struct {
	Alpha  bool
	Beta   *BetaResult
	Gamma  *GammaResult
	Berge  bool
	Degree Degree
}

// cancelStride is how many work units a tester performs between context
// checks — the repo-wide convention (mcs, gyo, exec kernels), coarse enough
// to stay out of profiles, fine enough to bound cancellation latency.
const cancelStride = 4096

// ticker counts work units and polls ctx once per cancelStride.
type ticker struct {
	ctx  context.Context
	work int
}

// tick charges n work units and reports ctx.Err() when a stride boundary
// was crossed.
func (t *ticker) tick(n int) error {
	before := t.work
	t.work += n
	if t.work/cancelStride != before/cancelStride {
		return t.ctx.Err()
	}
	return nil
}

// Classify runs the full spectrum over h: α via the linear-time MCS, β and
// γ via the polynomial certificate-producing testers, Berge via the
// incidence union-find. All four observe ctx; a cancelled run returns
// ctx.Err() with no partial result.
func Classify(ctx context.Context, h *hypergraph.Hypergraph) (*Result, error) {
	r, err := mcs.RunCtx(ctx, h)
	if err != nil {
		return nil, err
	}
	return ClassifyWithAlpha(ctx, h, r.Acyclic)
}

// ClassifyWithAlpha is Classify for callers that already hold the α verdict
// (the session API shares its MCS run), so no second search runs.
func ClassifyWithAlpha(ctx context.Context, h *hypergraph.Hypergraph, alpha bool) (*Result, error) {
	beta, err := Beta(ctx, h)
	if err != nil {
		return nil, err
	}
	gamma, err := Gamma(ctx, h)
	if err != nil {
		return nil, err
	}
	berge, err := Berge(ctx, h)
	if err != nil {
		return nil, err
	}
	res := &Result{Alpha: alpha, Beta: beta, Gamma: gamma, Berge: berge}
	switch {
	case alpha && beta.Acyclic && gamma.Acyclic && berge:
		res.Degree = DegreeBerge
	case alpha && beta.Acyclic && gamma.Acyclic:
		res.Degree = DegreeGamma
	case alpha && beta.Acyclic:
		res.Degree = DegreeBeta
	case alpha:
		res.Degree = DegreeAlpha
	default:
		res.Degree = DegreeCyclic
	}
	return res, nil
}
