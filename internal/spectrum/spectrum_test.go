package spectrum

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/acyclic"
	"repro/internal/gen"
	"repro/internal/hypergraph"
)

// checkAgainstSpec pins the polynomial testers to the exponential /
// independent implementations in internal/acyclic and validates both
// certificates. useBetaDef additionally runs the exponential β definition
// (feasible only under its edge cap).
func checkAgainstSpec(t *testing.T, h *hypergraph.Hypergraph, useBetaDef bool) {
	t.Helper()
	ctx := context.Background()
	res, err := Classify(ctx, h)
	if err != nil {
		t.Fatalf("Classify: %v", err)
	}
	cl := acyclic.Classify(h)
	if res.Alpha != cl.Alpha {
		t.Fatalf("alpha mismatch: spectrum=%v acyclic=%v\n%s", res.Alpha, cl.Alpha, h.Format())
	}
	if res.Beta.Acyclic != cl.Beta {
		t.Fatalf("beta mismatch: spectrum=%v acyclic=%v\n%s", res.Beta.Acyclic, cl.Beta, h.Format())
	}
	if res.Gamma.Acyclic != cl.Gamma {
		t.Fatalf("gamma mismatch: spectrum=%v acyclic(exponential)=%v\n%s", res.Gamma.Acyclic, cl.Gamma, h.Format())
	}
	if res.Berge != cl.Berge {
		t.Fatalf("berge mismatch: spectrum=%v acyclic=%v\n%s", res.Berge, cl.Berge, h.Format())
	}
	if useBetaDef {
		def, err := acyclic.IsBetaAcyclicByDefinition(h)
		if err != nil {
			t.Fatalf("IsBetaAcyclicByDefinition: %v", err)
		}
		if res.Beta.Acyclic != def {
			t.Fatalf("beta vs exponential definition mismatch: spectrum=%v def=%v\n%s", res.Beta.Acyclic, def, h.Format())
		}
	}
	if err := VerifyBeta(h, res.Beta); err != nil {
		t.Fatalf("beta certificate rejected: %v\n%s", err, h.Format())
	}
	if err := VerifyGamma(h, res.Gamma); err != nil {
		t.Fatalf("gamma certificate rejected: %v\n%s", err, h.Format())
	}
	wantDegree := DegreeCyclic
	switch {
	case cl.Alpha && cl.Beta && cl.Gamma && cl.Berge:
		wantDegree = DegreeBerge
	case cl.Alpha && cl.Beta && cl.Gamma:
		wantDegree = DegreeGamma
	case cl.Alpha && cl.Beta:
		wantDegree = DegreeBeta
	case cl.Alpha:
		wantDegree = DegreeAlpha
	}
	if res.Degree != wantDegree {
		t.Fatalf("degree mismatch: spectrum=%v want=%v\n%s", res.Degree, wantDegree, h.Format())
	}
}

// TestSpectrumExhaustiveSmall differentially pins the polynomial testers to
// the exponential specifications on every connected reduced hypergraph over
// up to 4 nodes.
func TestSpectrumExhaustiveSmall(t *testing.T) {
	for n := 1; n <= 4; n++ {
		for _, h := range gen.AllConnectedReduced(n) {
			checkAgainstSpec(t, h, true)
		}
	}
}

// TestSpectrumKnownExamples walks the named boundary instances of the
// hierarchy: each rung's classic witness classifies to exactly that degree.
func TestSpectrumKnownExamples(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		name   string
		h      *hypergraph.Hypergraph
		degree Degree
	}{
		{"single-edge", hypergraph.New([][]string{{"a", "b", "c"}}), DegreeBerge},
		{"path", gen.PathGraph(5), DegreeBerge},
		{"berge-breaker", hypergraph.New([][]string{{"a", "b"}, {"a", "b", "c"}}), DegreeGamma},
		{"fagin-beta-not-gamma", hypergraph.New([][]string{{"a", "b"}, {"b", "c"}, {"a", "b", "c"}}), DegreeBeta},
		{"alpha-not-beta", hypergraph.New([][]string{{"a", "b"}, {"b", "c"}, {"c", "a"}, {"a", "b", "c"}}), DegreeAlpha},
		{"triangle", gen.CycleGraph(3), DegreeCyclic},
	}
	for _, tc := range cases {
		res, err := Classify(ctx, tc.h)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.Degree != tc.degree {
			t.Errorf("%s: degree %v, want %v", tc.name, res.Degree, tc.degree)
		}
		if err := VerifyBeta(tc.h, res.Beta); err != nil {
			t.Errorf("%s: beta certificate rejected: %v", tc.name, err)
		}
		if err := VerifyGamma(tc.h, res.Gamma); err != nil {
			t.Errorf("%s: gamma certificate rejected: %v", tc.name, err)
		}
	}
}

// TestSpectrumRandomDifferential runs the differential pin over seeded
// random hypergraphs small enough for the exponential γ search.
func TestSpectrumRandomDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	for i := 0; i < 300; i++ {
		h := gen.Random(rng, gen.RandomSpec{
			Nodes:    3 + rng.Intn(6),
			Edges:    1 + rng.Intn(7),
			MinArity: 1,
			MaxArity: 4,
		})
		checkAgainstSpec(t, h, h.NumEdges() <= 12)
	}
}

// TestSpectrumGammaGenerator checks that every instance of the ported
// Leitert generator is γ-acyclic per the polynomial tester (with a valid
// certificate), and differentially per the exponential γ search at small
// sizes.
func TestSpectrumGammaGenerator(t *testing.T) {
	rng := rand.New(rand.NewSource(1982))
	ctx := context.Background()
	for i := 0; i < 200; i++ {
		m, n := 1+rng.Intn(8), 1+rng.Intn(8)
		h := gen.GammaAcyclic(rng, m, n)
		res, err := Gamma(ctx, h)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Acyclic {
			t.Fatalf("GammaAcyclic(m=%d,n=%d) judged cyclic\n%s", m, n, h.Format())
		}
		if err := VerifyGamma(h, res); err != nil {
			t.Fatalf("certificate rejected: %v\n%s", err, h.Format())
		}
		if !acyclic.IsGammaAcyclic(h) {
			t.Fatalf("exponential spec disagrees on generator instance\n%s", h.Format())
		}
	}
	// Larger instances: tester + checker only (the spec search is
	// exponential).
	for i := 0; i < 10; i++ {
		h := gen.GammaAcyclic(rng, 200, 150)
		res, err := Gamma(ctx, h)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Acyclic {
			t.Fatalf("large GammaAcyclic instance judged cyclic")
		}
		if err := VerifyGamma(h, res); err != nil {
			t.Fatalf("large certificate rejected: %v", err)
		}
	}
}

// TestSpectrumLargeUnderDeadline is the acceptance bar that motivated the
// subsystem: a 10⁴-edge schema classifies — full spectrum, certificates and
// all — within the server's default 2 s deadline.
func TestSpectrumLargeUnderDeadline(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := gen.GammaAcyclic(rng, 10000, 6000)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	start := time.Now()
	res, err := Classify(ctx, h)
	if err != nil {
		t.Fatalf("10⁴-edge classification missed the 2s deadline after %v: %v", time.Since(start), err)
	}
	if res.Degree < DegreeGamma {
		t.Fatalf("generator instance classified below gamma: %v", res.Degree)
	}
	t.Logf("10⁴-edge spectrum in %v", time.Since(start))
}

// TestSpectrumCancellation checks that a pre-cancelled context surfaces
// ctx.Err() from every tester on an instance large enough to cross the
// polling stride.
func TestSpectrumCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	h := gen.GammaAcyclic(rng, 3000, 2000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Beta(ctx, h); err == nil {
		t.Error("Beta ignored cancelled context")
	}
	if _, err := Gamma(ctx, h); err == nil {
		t.Error("Gamma ignored cancelled context")
	}
	if _, err := Berge(ctx, h); err == nil {
		t.Error("Berge ignored cancelled context")
	}
	if _, err := Classify(ctx, h); err == nil {
		t.Error("Classify ignored cancelled context")
	}
}

// allNodes lists the covered node ids of h.
func allNodes(h *hypergraph.Hypergraph) []int32 {
	var ids []int32
	h.CoveredNodes().ForEach(func(id int) { ids = append(ids, int32(id)) })
	return ids
}

// TestVerifyRejectsForgedCertificates makes sure the checkers are not
// rubber stamps: corrupted orders, step sequences, and cores must all be
// rejected.
func TestVerifyRejectsForgedCertificates(t *testing.T) {
	ctx := context.Background()
	h := hypergraph.New([][]string{{"a", "b"}, {"b", "c"}, {"a", "b", "c"}}) // β-acyclic, not γ
	beta, err := Beta(ctx, h)
	if err != nil || !beta.Acyclic {
		t.Fatalf("setup: beta = %+v, %v", beta, err)
	}
	gamma, err := Gamma(ctx, h)
	if err != nil || gamma.Acyclic {
		t.Fatalf("setup: gamma = %+v, %v", gamma, err)
	}

	// Truncated elimination order leaves live nodes behind.
	forged := &BetaResult{Acyclic: true, Order: beta.Order[:1]}
	if VerifyBeta(h, forged) == nil {
		t.Error("VerifyBeta accepted a truncated order")
	}
	// An accepting claim for a cyclic instance cannot be completed.
	tri := gen.CycleGraph(3)
	if VerifyBeta(tri, &BetaResult{Acyclic: true, Order: allNodes(tri)}) == nil {
		t.Error("VerifyBeta accepted a forged order for a cyclic graph")
	}
	// A core that still contains a nest point is no obstruction.
	if VerifyBeta(h, &BetaResult{Core: allNodes(h)}) == nil {
		t.Error("VerifyBeta accepted a reducible core")
	}
	// Forged gamma acceptance of a non-gamma instance.
	if VerifyGamma(h, &GammaResult{Acyclic: true, Steps: nil}) == nil {
		t.Error("VerifyGamma accepted an empty step sequence for a non-empty hypergraph")
	}
	// A twin step naming non-twins.
	bad := &GammaResult{Acyclic: true, Steps: append([]Step{{Kind: StepTwinEdge, ID: 0, Twin: 2}}, gamma.Steps...)}
	if VerifyGamma(h, bad) == nil {
		t.Error("VerifyGamma accepted a false twin-edge step")
	}
	// A core with a leaf in it.
	path := gen.PathGraph(3)
	if VerifyGamma(path, &GammaResult{CoreNodes: allNodes(path), CoreEdges: []int32{0, 1}}) == nil {
		t.Error("VerifyGamma accepted a reducible core")
	}
}
