package store

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// BenchmarkAppend measures the per-edit durability tax: one framed,
// checksummed record written (no fsync) on every acknowledged edit.
func BenchmarkAppend(b *testing.B) {
	dir := b.TempDir()
	s, ws, err := Create(dir, Options{SnapshotEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ws.AddEdge(fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAppendSync is BenchmarkAppend with fsync-per-append — the
// machine's real durable-write floor.
func BenchmarkAppendSync(b *testing.B) {
	dir := b.TempDir()
	s, ws, err := Create(dir, Options{SnapshotEvery: -1, SyncAppends: true})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ws.AddEdge(fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// edits loads a session with n chain edits (the workload the compaction and
// recovery benchmarks run over).
func edits(b *testing.B, ws interface {
	AddEdge(nodes ...string) (int, error)
}, n int) {
	for i := 0; i < n; i++ {
		if _, err := ws.AddEdge(fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompact measures snapshot compaction of a 10^5-edit log.
func BenchmarkCompact(b *testing.B) {
	dir := b.TempDir()
	s, ws, err := Create(dir, Options{SnapshotEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	edits(b, ws, 100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Dirty the session so each iteration cuts a real snapshot.
		b.StopTimer()
		if _, err := ws.AddEdge(fmt.Sprintf("m%d", i), fmt.Sprintf("m%d", i+1)); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := s.Compact(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkColdRecoveryWAL measures Open on a session whose entire 10^5-edit
// history lives in the WAL (no snapshot): the replay-everything worst case.
func BenchmarkColdRecoveryWAL(b *testing.B) {
	dir := b.TempDir()
	s, ws, err := Create(dir, Options{SnapshotEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	edits(b, ws, 100_000)
	s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s2, _, err := Open(dir, Options{SnapshotEvery: -1})
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		s2.Close()
		b.StartTimer()
	}
}

// BenchmarkColdRecoverySnapshot measures Open on the same 10^5-edit session
// after compaction: restore-the-snapshot, near-empty tail.
func BenchmarkColdRecoverySnapshot(b *testing.B) {
	dir := b.TempDir()
	s, ws, err := Create(dir, Options{SnapshotEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	edits(b, ws, 100_000)
	if err := s.Compact(); err != nil {
		b.Fatal(err)
	}
	s.Close()
	var snapSize int64
	if fi, err := os.Stat(filepath.Join(dir, SnapshotFile)); err == nil {
		snapSize = fi.Size()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s2, _, err := Open(dir, Options{SnapshotEvery: -1})
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		s2.Close()
		b.StartTimer()
	}
	// After ResetTimer, or it would be cleared with the rest of the metrics.
	b.ReportMetric(float64(snapSize), "snapshot-bytes")
}
