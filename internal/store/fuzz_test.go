package store

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/dynamic"
)

// FuzzWALRecord fuzzes the frame + record codec from both directions.
//
// Structured direction: any record built from the fuzzed fields must
// round-trip exactly through encode → frame → parse → decode, and any
// truncation of the framed bytes must be rejected as a torn frame — never
// decoded into a different record, never a panic.
//
// Raw direction: the fuzzed bytes themselves are parsed as a frame; the
// only requirement is "no panic, no false frame" (a parse that succeeds
// must hand back a payload whose checksum genuinely matches, which
// parseFrame guarantees by construction — so here success simply feeds
// decodeRecord, which must not panic either).
func FuzzWALRecord(f *testing.F) {
	f.Add(byte(1), uint64(1), uint64(0), "a\x00b", "x", "y", 0, byte(0))
	f.Add(byte(2), uint64(9), uint64(77), "", "", "", 3, byte(1))
	f.Add(byte(3), uint64(1<<40), uint64(0), "old", "new", "ü–名", 1, byte(7))
	f.Fuzz(func(t *testing.T, op byte, epoch, edge uint64, s1, s2, s3 string, cut int, flip byte) {
		rec := dynamic.JournalRecord{
			Op:    dynamic.JournalOp(1 + op%3),
			Epoch: epoch,
			Edge:  int(edge &^ (1 << 63)), // ids are non-negative
			Old:   s1,
			New:   s2,
		}
		if rec.Op == dynamic.JournalAddEdge {
			rec.Nodes = []string{s1, s2, s3}
		} else {
			rec.Nodes = nil
		}
		if rec.Op != dynamic.JournalRenameNode {
			rec.Old, rec.New = "", ""
		}
		if rec.Op == dynamic.JournalRenameNode {
			rec.Edge = 0
		}

		frame := appendFrame(nil, encodeRecord(nil, rec))
		payload, n, err := parseFrame(frame)
		if err != nil || n != len(frame) {
			t.Fatalf("framed record does not parse: n=%d err=%v", n, err)
		}
		got, err := decodeRecord(payload)
		if err != nil {
			t.Fatalf("round-trip decode: %v", err)
		}
		if !reflect.DeepEqual(got, rec) {
			t.Fatalf("round-trip mismatch: %+v != %+v", got, rec)
		}

		// Truncation at any interior point must read as a torn frame.
		if cut < 0 {
			cut = -cut
		}
		if len(frame) > 0 {
			trunc := frame[:cut%len(frame)]
			if _, _, err := parseFrame(trunc); err == nil {
				t.Fatalf("truncated frame (%d of %d bytes) parsed", len(trunc), len(frame))
			}
		}

		// A bit flip anywhere must be rejected (checksum or length), or —
		// if it parses — decode without panicking; it must never silently
		// equal the original while the bytes differ.
		mut := append([]byte(nil), frame...)
		mut[int(edge)%len(mut)] ^= 1 << (flip % 8)
		if p2, _, err := parseFrame(mut); err == nil {
			if r2, derr := decodeRecord(p2); derr == nil {
				if reflect.DeepEqual(r2, rec) && !bytes.Equal(mut, frame) {
					t.Fatal("flipped frame decoded to the original record")
				}
			}
		}
	})
}

// FuzzWALRecordRaw throws arbitrary bytes at the parse path: whatever the
// input, no panic, and a successful parse implies a checksum-consistent
// payload (re-framing it reproduces the parsed prefix).
func FuzzWALRecordRaw(f *testing.F) {
	f.Add([]byte(walMagic))
	f.Add([]byte("\x04\x00\x00\x00\xde\xad\xbe\xefAAAA"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		payload, n, err := parseFrame(raw)
		if err != nil {
			return
		}
		if re := appendFrame(nil, payload); !bytes.Equal(re, raw[:n]) {
			t.Fatal("parsed frame does not re-frame to its own bytes")
		}
		_, _ = decodeRecord(payload) // must not panic
		_, _ = decodeSnapshot(payload)
	})
}
