// Package store is the durability subsystem behind workspace sessions: a
// per-session directory holding a snapshot plus a write-ahead edit log, so
// a `ws-N` session on the server — epoch, schema, per-component
// fingerprints, verdict — survives a process crash or drain.
//
// # Layout of a session directory
//
//	<dir>/
//	  wal.hgl       append-only edit log: 8-byte magic, then frames
//	  snapshot.hgs  compacted state: 8-byte magic, then one frame
//	  *.tmp         in-flight atomic writes; ignored (and removable)
//
// Every frame is [u32 payload length][u32 CRC-32C of payload][payload],
// little-endian. A WAL payload is one edit record (op, the epoch the edit
// produced, and its fields); the snapshot payload is a canonical dump of a
// dynamic.Workspace's persistable state (epoch, per-slot generations and
// node lists, free-slot stack) plus a 128-bit content digest cross-checking
// the dump itself.
//
// # Durability contract
//
// The session implements dynamic.Journal: the workspace offers every edit
// to Append *before* applying it, so an edit is acknowledged to the client
// exactly when its frame is on disk. Append failures abort the edit — the
// workspace stays at its pre-edit epoch — and a partial (torn) frame marks
// the session failed rather than risking a corrupt suffix: fail-stop now,
// repair on the next Open.
//
// # Recovery semantics
//
// Open replays snapshot-then-tail: restore the snapshot (verifying its CRC
// and content digest), then apply WAL records in order, skipping records
// the snapshot already covers (epoch ≤ snapshot epoch) and requiring the
// rest to be epoch-contiguous. Replayed AddEdges must reproduce the exact
// recorded edge id — id allocation is deterministic, so any disagreement is
// corruption, not drift. A torn tail (short or checksum-failing trailing
// frame, the signature of a crash mid-append) is truncated: recovery lands
// on the longest acknowledged prefix, never on made-up state.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/dynamic"
)

// ErrCorrupt reports a structurally damaged session file: a bad magic, a
// checksum-failing frame before the tail, an epoch gap, or a replayed edit
// that disagrees with the recorded outcome. (A damaged *trailing* frame is
// not corruption — it is a torn tail, repaired by truncation.)
var ErrCorrupt = errors.New("store: corrupt session data")

// ErrSessionFailed is the sticky error a failed session returns from every
// subsequent Append/Compact: after a torn or unrepairable write the session
// stops accepting edits instead of risking a corrupt suffix. Reopen the
// directory to repair and resume.
var ErrSessionFailed = errors.New("store: session failed")

const (
	walMagic  = "HGWAL01\n"
	snapMagic = "HGSNAP1\n"
	magicLen  = 8

	frameHeaderLen = 8 // u32 payload length + u32 CRC-32C

	// maxFramePayload bounds a single frame; larger lengths are treated as
	// corruption rather than allocated (a snapshot of a 10^6-edge schema is
	// well under this).
	maxFramePayload = 1 << 28
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendFrame wraps payload in a length+checksum header and appends the
// whole frame to buf.
func appendFrame(buf, payload []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoli))
	return append(buf, payload...)
}

// parseFrame reads one frame from the head of b. It returns the payload
// and the total frame size. A frame that runs past b reports errTornFrame
// (the caller decides whether a short tail is a torn write or corruption);
// a checksum mismatch likewise reports errTornFrame — both are the
// signature of a write that never completed.
func parseFrame(b []byte) (payload []byte, size int, err error) {
	if len(b) < frameHeaderLen {
		return nil, 0, errTornFrame
	}
	n := binary.LittleEndian.Uint32(b)
	sum := binary.LittleEndian.Uint32(b[4:])
	if n > maxFramePayload {
		return nil, 0, errTornFrame
	}
	if len(b) < frameHeaderLen+int(n) {
		return nil, 0, errTornFrame
	}
	payload = b[frameHeaderLen : frameHeaderLen+int(n)]
	if crc32.Checksum(payload, castagnoli) != sum {
		return nil, 0, errTornFrame
	}
	return payload, frameHeaderLen + int(n), nil
}

// errTornFrame marks a frame that does not parse cleanly — short, oversized
// length word, or checksum mismatch. At the tail of a WAL it means a torn
// write; anywhere else it is corruption.
var errTornFrame = errors.New("store: torn or damaged frame")

// encodeRecord appends rec's payload encoding to buf:
//
//	u8 op · uvarint epoch · op fields
//	  add:    uvarint edge id · uvarint node count · (uvarint len + bytes)*
//	  remove: uvarint edge id
//	  rename: (uvarint len + bytes) old · (uvarint len + bytes) new
func encodeRecord(buf []byte, rec dynamic.JournalRecord) []byte {
	buf = append(buf, byte(rec.Op))
	buf = binary.AppendUvarint(buf, rec.Epoch)
	switch rec.Op {
	case dynamic.JournalAddEdge:
		buf = binary.AppendUvarint(buf, uint64(rec.Edge))
		buf = binary.AppendUvarint(buf, uint64(len(rec.Nodes)))
		for _, n := range rec.Nodes {
			buf = appendString(buf, n)
		}
	case dynamic.JournalRemoveEdge:
		buf = binary.AppendUvarint(buf, uint64(rec.Edge))
	case dynamic.JournalRenameNode:
		buf = appendString(buf, rec.Old)
		buf = appendString(buf, rec.New)
	}
	return buf
}

// decodeRecord parses one record payload. Any structural defect — unknown
// op, truncated field, trailing garbage — is ErrCorrupt: the frame checksum
// already passed, so the bytes are what was written and the writer was
// wrong.
func decodeRecord(payload []byte) (dynamic.JournalRecord, error) {
	var rec dynamic.JournalRecord
	if len(payload) == 0 {
		return rec, fmt.Errorf("%w: empty record", ErrCorrupt)
	}
	rec.Op = dynamic.JournalOp(payload[0])
	b := payload[1:]
	epoch, n := binary.Uvarint(b)
	if n <= 0 {
		return rec, fmt.Errorf("%w: bad record epoch", ErrCorrupt)
	}
	rec.Epoch = epoch
	b = b[n:]
	var err error
	switch rec.Op {
	case dynamic.JournalAddEdge:
		var id, count uint64
		if id, b, err = readUvarint(b); err != nil {
			return rec, err
		}
		if count, b, err = readUvarint(b); err != nil {
			return rec, err
		}
		if count > uint64(len(b)) { // each name costs ≥ 1 byte
			return rec, fmt.Errorf("%w: node count %d exceeds payload", ErrCorrupt, count)
		}
		rec.Edge = int(id)
		rec.Nodes = make([]string, count)
		for i := range rec.Nodes {
			if rec.Nodes[i], b, err = readString(b); err != nil {
				return rec, err
			}
		}
	case dynamic.JournalRemoveEdge:
		var id uint64
		if id, b, err = readUvarint(b); err != nil {
			return rec, err
		}
		rec.Edge = int(id)
	case dynamic.JournalRenameNode:
		if rec.Old, b, err = readString(b); err != nil {
			return rec, err
		}
		if rec.New, b, err = readString(b); err != nil {
			return rec, err
		}
	default:
		return rec, fmt.Errorf("%w: unknown record op %d", ErrCorrupt, payload[0])
	}
	if len(b) != 0 {
		return rec, fmt.Errorf("%w: %d trailing bytes after record", ErrCorrupt, len(b))
	}
	return rec, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func readUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: truncated varint", ErrCorrupt)
	}
	return v, b[n:], nil
}

func readString(b []byte) (string, []byte, error) {
	n, rest, err := readUvarint(b)
	if err != nil {
		return "", nil, err
	}
	if n > uint64(len(rest)) {
		return "", nil, fmt.Errorf("%w: string length %d exceeds payload", ErrCorrupt, n)
	}
	return string(rest[:n]), rest[n:], nil
}
