package store

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dynamic"
	"repro/internal/fault"
	"repro/internal/obs"
)

// Options configures a session's durability behavior.
type Options struct {
	// SyncAppends fsyncs the WAL after every append. Off, an acknowledged
	// edit survives a process crash (the write is a completed syscall) but
	// the most recent edits may be lost to a whole-machine power failure.
	SyncAppends bool
	// SnapshotEvery triggers a background compaction once this many records
	// accumulate past the last snapshot. 0 means the default (4096);
	// negative disables automatic compaction (Compact can still be called).
	SnapshotEvery int
}

const defaultSnapshotEvery = 4096

// Session file names inside a session directory.
const (
	WALFile      = "wal.hgl"
	SnapshotFile = "snapshot.hgs"
)

var (
	appendSeconds  = obs.H("store_append_seconds")
	compactSeconds = obs.H("store_compact_seconds")
	recoverSeconds = obs.H("store_recover_seconds")
	recoverTotal   = obs.C("store_recover_total")
	tornTails      = obs.C("store_torn_tail_total")
	snapshotBytes  = obs.G("store_snapshot_bytes")
	walBytes       = obs.G("store_wal_bytes")
)

// Session is one workspace's durable backing: the open WAL plus the
// compaction state. It implements dynamic.Journal — attach it with
// Workspace.SetJournal (Create and Open do this for you) and every edit is
// persisted before it is acknowledged.
//
// A session is safe for concurrent use. Append runs under the workspace
// lock (the journal contract); Compact may run concurrently with appends —
// records landing while the snapshot is cut are preserved by an epoch
// filter when the log is rewritten.
type Session struct {
	dir  string
	opts Options
	ws   *dynamic.Workspace

	mu         sync.Mutex // guards the WAL fd and counters below
	wal        *os.File
	walSize    int64 // current WAL length (our own offset authority)
	walRecords int   // records past the last snapshot
	snapEpoch  uint64
	lastEpoch  uint64 // epoch of the most recent acknowledged record
	failed     error  // sticky fail-stop state
	closed     bool

	compactMu  sync.Mutex  // serializes compactions
	compacting atomic.Bool // one background compaction at a time
}

// Create initializes a fresh session directory (which must not already hold
// one) and returns the session attached to a new empty workspace built with
// wsOpts.
func Create(dir string, opts Options, wsOpts ...dynamic.Option) (*Session, *dynamic.Workspace, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	for _, name := range []string{WALFile, SnapshotFile} {
		if _, err := os.Stat(filepath.Join(dir, name)); err == nil {
			return nil, nil, fmt.Errorf("store: %s already holds a session (open it instead)", dir)
		}
	}
	wal, err := os.OpenFile(filepath.Join(dir, WALFile), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, nil, err
	}
	if _, err := wal.Write([]byte(walMagic)); err != nil {
		wal.Close()
		return nil, nil, err
	}
	if err := wal.Sync(); err != nil {
		wal.Close()
		return nil, nil, err
	}
	syncDir(dir)
	s := &Session{dir: dir, opts: opts, wal: wal, walSize: magicLen}
	ws := dynamic.New(wsOpts...)
	s.ws = ws
	ws.SetJournal(s)
	return s, ws, nil
}

// Open recovers a session directory: restore the snapshot (if any), replay
// the WAL tail, truncate a torn tail, and return the session attached to
// the recovered workspace. The workspace is observationally identical to
// the one that wrote the directory, up to its last acknowledged edit.
func Open(dir string, opts Options, wsOpts ...dynamic.Option) (*Session, *dynamic.Workspace, error) {
	ctx, sp := obs.StartSpan(context.Background(), "store.recover")
	sp.SetAttr("dir", dir)
	defer sp.End()
	start := time.Now()
	if err := fault.HitCtx(ctx, fault.StoreRecover); err != nil {
		return nil, nil, err
	}

	ws, snapEpoch, err := recoverSnapshot(dir, wsOpts...)
	if err != nil {
		return nil, nil, err
	}
	wal, walSize, walRecords, torn, err := replayWAL(ctx, dir, ws, snapEpoch)
	if err != nil {
		return nil, nil, err
	}
	if torn {
		tornTails.Inc()
		sp.SetBool("tornTail", true)
	}
	sp.SetInt("epoch", int64(ws.Epoch()))
	sp.SetInt("tailRecords", int64(walRecords))

	s := &Session{
		dir: dir, opts: opts, wal: wal,
		walSize: walSize, walRecords: walRecords,
		snapEpoch: snapEpoch, lastEpoch: ws.Epoch(),
	}
	s.ws = ws
	ws.SetJournal(s)
	recoverTotal.Inc()
	recoverSeconds.Observe(time.Since(start))
	walBytes.Set(walSize)
	return s, ws, nil
}

// recoverSnapshot restores the snapshot's workspace, or a fresh one when
// the directory has no snapshot yet.
func recoverSnapshot(dir string, wsOpts ...dynamic.Option) (*dynamic.Workspace, uint64, error) {
	st, err := readSnapshotFile(filepath.Join(dir, SnapshotFile))
	if errors.Is(err, os.ErrNotExist) {
		return dynamic.New(wsOpts...), 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	ws, err := dynamic.RestoreWorkspace(st, wsOpts...)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return ws, st.Epoch, nil
}

// replayWAL applies the log's records past the snapshot epoch to ws, in
// order, verifying epoch contiguity and recorded edge ids. A torn tail is
// truncated away; the file is returned open for appending at its repaired
// length.
func replayWAL(ctx context.Context, dir string, ws *dynamic.Workspace, snapEpoch uint64) (f *os.File, size int64, records int, torn bool, err error) {
	path := filepath.Join(dir, WALFile)
	raw, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		// A session dir with a snapshot but no WAL (lost between compaction
		// steps): treat as an empty log.
		raw = []byte(walMagic)
	} else if err != nil {
		return nil, 0, 0, false, err
	}
	if len(raw) < magicLen || string(raw[:magicLen]) != walMagic {
		// A file too short to hold the magic can only be a crash during
		// Create's header write: recover as an empty log. Wrong bytes, by
		// contrast, mean this is not a WAL at all.
		if len(raw) >= magicLen {
			return nil, 0, 0, false, fmt.Errorf("%w: bad WAL magic in %s", ErrCorrupt, path)
		}
		raw = []byte(walMagic)
		torn = true
	}
	off := magicLen
	for off < len(raw) {
		payload, n, perr := parseFrame(raw[off:])
		if perr != nil {
			// Short or checksum-failing frame: everything before it is the
			// acknowledged prefix; the rest is a torn write.
			torn = true
			break
		}
		rec, derr := decodeRecord(payload)
		if derr != nil {
			return nil, 0, 0, false, fmt.Errorf("%s at offset %d: %w", path, off, derr)
		}
		if rec.Epoch <= snapEpoch {
			// Pre-snapshot record surviving a crash between the snapshot
			// rename and the WAL rewrite: already folded in, skip.
			off += n
			records++
			continue
		}
		if rec.Epoch != ws.Epoch()+1 {
			return nil, 0, 0, false, fmt.Errorf("%w: %s at offset %d: epoch %d after %d", ErrCorrupt, path, off, rec.Epoch, ws.Epoch())
		}
		if aerr := applyRecord(ws, rec); aerr != nil {
			return nil, 0, 0, false, fmt.Errorf("%w: %s at offset %d: %v", ErrCorrupt, path, off, aerr)
		}
		off += n
		records++
	}
	f, err = os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, 0, 0, false, err
	}
	if torn {
		// Repair: drop the torn suffix so the next append starts on a clean
		// frame boundary. (Also rebuilds a WAL lost mid-compaction.)
		if terr := f.Truncate(int64(off)); terr != nil {
			f.Close()
			return nil, 0, 0, false, terr
		}
		if off == magicLen {
			if _, werr := f.WriteAt([]byte(walMagic), 0); werr != nil {
				f.Close()
				return nil, 0, 0, false, werr
			}
		}
		f.Sync()
	}
	return f, int64(off), records, torn, nil
}

// applyRecord replays one edit into ws, checking that the outcome matches
// what was recorded at append time.
func applyRecord(ws *dynamic.Workspace, rec dynamic.JournalRecord) error {
	switch rec.Op {
	case dynamic.JournalAddEdge:
		id, err := ws.AddEdge(rec.Nodes...)
		if err != nil {
			return err
		}
		if id != rec.Edge {
			return fmt.Errorf("replayed AddEdge issued id %d, recorded %d", id, rec.Edge)
		}
	case dynamic.JournalRemoveEdge:
		return ws.RemoveEdge(rec.Edge)
	case dynamic.JournalRenameNode:
		return ws.RenameNode(rec.Old, rec.New)
	default:
		return fmt.Errorf("unknown op %d", rec.Op)
	}
	return nil
}

// Dir returns the session's directory.
func (s *Session) Dir() string { return s.dir }

// Epoch returns the epoch of the last acknowledged (durable) edit.
func (s *Session) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastEpoch
}

// Dirty reports whether the session holds acknowledged edits not yet folded
// into the snapshot — i.e. whether a Compact would change the files.
func (s *Session) Dirty() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.walRecords > 0
}

// Err returns the sticky failure, if the session has fail-stopped.
func (s *Session) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failed
}

// Append implements dynamic.Journal: frame the record, write it to the WAL,
// and only then let the workspace apply the edit. Runs under the workspace
// lock. Any failure aborts the edit; a failure that may have left partial
// bytes (a torn write) additionally fail-stops the session — the on-disk
// prefix stays consistent and the next Open repairs the tail.
func (s *Session) Append(rec dynamic.JournalRecord) error {
	start := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed != nil {
		return s.failed
	}
	if s.closed {
		return errors.New("store: session closed")
	}
	if rec.Epoch != s.lastEpoch+1 {
		return fmt.Errorf("store: append epoch %d after %d (journal attached mid-history?)", rec.Epoch, s.lastEpoch)
	}
	frame := appendFrame(nil, encodeRecord(nil, rec))

	if err := fault.Hit(fault.StoreAppend); err != nil {
		if errors.Is(err, fault.ErrTorn) && len(frame) > 1 {
			// Simulate a crash mid-write: half a frame lands, then the
			// session fail-stops exactly as a real torn write would below.
			s.wal.WriteAt(frame[:len(frame)/2], s.walSize)
			s.failed = fmt.Errorf("%w: %w", ErrSessionFailed, err)
			return s.failed
		}
		return err
	}

	n, err := s.wal.WriteAt(frame, s.walSize)
	if err != nil {
		if n > 0 {
			// Partial frame on disk: try to erase it; keep serving only if
			// the erase provably succeeded.
			if terr := s.wal.Truncate(s.walSize); terr != nil {
				s.failed = fmt.Errorf("%w: torn append not repaired: %v", ErrSessionFailed, terr)
				return s.failed
			}
		}
		return err
	}
	if s.opts.SyncAppends {
		if err := s.wal.Sync(); err != nil {
			// The write may or may not be durable; refuse to acknowledge
			// and fail-stop (the in-memory edit is aborted, so a surviving
			// frame is a stale tail the next Open replays harmlessly —
			// epoch contiguity still holds because nothing after it was
			// acknowledged either).
			s.failed = fmt.Errorf("%w: wal sync: %v", ErrSessionFailed, err)
			return s.failed
		}
	}
	s.walSize += int64(len(frame))
	s.walRecords++
	s.lastEpoch = rec.Epoch
	walBytes.Set(s.walSize)
	appendSeconds.Observe(time.Since(start))

	if every := s.snapshotEveryLocked(); every > 0 && s.walRecords >= every && s.compacting.CompareAndSwap(false, true) {
		go s.compactAsync()
	}
	return nil
}

func (s *Session) snapshotEveryLocked() int {
	if s.opts.SnapshotEvery < 0 {
		return 0
	}
	if s.opts.SnapshotEvery == 0 {
		return defaultSnapshotEvery
	}
	return s.opts.SnapshotEvery
}

// compactAsync runs a threshold-triggered compaction off the edit path. An
// injected panic at store.snapshot must not crash the process: compaction
// is advisory (the WAL alone is a correct, if long, history).
func (s *Session) compactAsync() {
	defer s.compacting.Store(false)
	defer func() {
		if r := recover(); r != nil {
			// Swallow: the session keeps appending; the next threshold
			// crossing retries.
			_ = r
		}
	}()
	_ = s.Compact()
}

// Compact cuts a snapshot of the workspace's current state and rewrites the
// WAL to hold only records past it. Appends may land concurrently — the
// rewrite keeps every record newer than the snapshot's epoch, so nothing
// acknowledged is ever dropped. Crash-safe at every step: the snapshot
// replaces atomically, and a crash between the two file updates leaves
// stale-but-skippable WAL head records, not corruption.
func (s *Session) Compact() error {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	ctx, sp := obs.StartSpan(context.Background(), "store.compact")
	sp.SetAttr("dir", s.dir)
	defer sp.End()
	start := time.Now()

	if err := s.Err(); err != nil {
		return err
	}
	if err := fault.HitCtx(ctx, fault.StoreSnapshot); err != nil {
		if errors.Is(err, fault.ErrTorn) {
			// Simulate a crash mid-snapshot-write: a partial temp file is
			// left behind; the live snapshot is untouched and the session
			// keeps serving (compaction is advisory, so no fail-stop).
			os.WriteFile(filepath.Join(s.dir, SnapshotFile+".tmp"), []byte("torn"), 0o644)
		}
		sp.SetAttr("error", err.Error())
		return err
	}

	st := s.ws.ExportState() // takes the workspace lock; s.mu is NOT held
	s.mu.Lock()
	upToDate := st.Epoch == s.snapEpoch && s.walRecords == 0
	s.mu.Unlock()
	if upToDate {
		return nil
	}
	size, err := writeSnapshotFile(filepath.Join(s.dir, SnapshotFile), st)
	if err != nil {
		sp.SetAttr("error", err.Error())
		return err
	}
	snapshotBytes.Set(size)
	sp.SetInt("snapshotBytes", size)
	sp.SetInt("epoch", int64(st.Epoch))

	// Rewrite the WAL without the records the snapshot now covers. Under
	// s.mu so no append interleaves with the swap.
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed != nil {
		return s.failed
	}
	if err := s.rewriteWALLocked(st.Epoch); err != nil {
		// The snapshot landed but the log still has pre-snapshot records;
		// recovery skips them by epoch, so this is a space leak, not a
		// correctness problem. Fail-stop only if the WAL fd is now suspect.
		sp.SetAttr("error", err.Error())
		return err
	}
	s.snapEpoch = st.Epoch
	compactSeconds.Observe(time.Since(start))
	return nil
}

// rewriteWALLocked replaces the WAL with one holding only records newer
// than epoch. Called with s.mu held.
func (s *Session) rewriteWALLocked(epoch uint64) error {
	path := filepath.Join(s.dir, WALFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if int64(len(raw)) > s.walSize {
		raw = raw[:s.walSize] // never resurrect bytes past our own offset
	}
	out := make([]byte, 0, 1024)
	out = append(out, walMagic...)
	kept := 0
	off := magicLen
	for off < len(raw) {
		payload, n, perr := parseFrame(raw[off:])
		if perr != nil {
			break // torn tail: drop (nothing acknowledged lives there)
		}
		rec, derr := decodeRecord(payload)
		if derr != nil {
			return derr
		}
		if rec.Epoch > epoch {
			out = append(out, raw[off:off+n]...)
			kept++
		}
		off += n
	}
	tmp := path + ".tmp"
	if err := writeFileSync(tmp, out); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	syncDir(s.dir)
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		s.failed = fmt.Errorf("%w: WAL reopen after rewrite: %v", ErrSessionFailed, err)
		return s.failed
	}
	s.wal.Close()
	s.wal = f
	s.walSize = int64(len(out))
	s.walRecords = kept
	walBytes.Set(s.walSize)
	return nil
}

// Close releases the WAL file handle. It does not flush a final snapshot —
// that is the caller's policy (the server's Drain compacts dirty sessions
// first). Safe to call twice.
func (s *Session) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.wal.Close()
}

// --- offline inspection ---

// Info is a session directory's recovered identity, as reported by Verify.
type Info struct {
	Dir           string `json:"dir"`
	SnapshotEpoch uint64 `json:"snapshotEpoch"` // 0: no snapshot yet
	Epoch         uint64 `json:"epoch"`         // after tail replay
	TailRecords   int    `json:"tailRecords"`   // WAL records replayed or skipped
	TornTail      bool   `json:"tornTail"`      // WAL ended in a torn frame
	Edges         int    `json:"edges"`
	Nodes         int    `json:"nodes"`
	Components    int    `json:"components"`
	Acyclic       bool   `json:"acyclic"`
	Digest        string `json:"digest"` // canonical content digest, hex
}

// Verify recovers a session directory read-only — snapshot restore, digest
// cross-check, tail replay (in memory; a torn tail is reported, not
// repaired) — and returns what a server booting on it would see. It is the
// engine behind `hgtool ws`.
func Verify(dir string) (Info, error) {
	ctx, sp := obs.StartSpan(context.Background(), "store.verify")
	sp.SetAttr("dir", dir)
	defer sp.End()
	if err := fault.HitCtx(ctx, fault.StoreRecover); err != nil {
		return Info{}, err
	}
	ws, snapEpoch, err := recoverSnapshot(dir)
	if err != nil {
		return Info{}, err
	}
	info := Info{Dir: dir, SnapshotEpoch: snapEpoch}
	raw, err := os.ReadFile(filepath.Join(dir, WALFile))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return Info{}, err
	}
	if err == nil {
		if len(raw) < magicLen || string(raw[:magicLen]) != walMagic {
			if len(raw) >= magicLen {
				return Info{}, fmt.Errorf("%w: bad WAL magic in %s", ErrCorrupt, dir)
			}
			info.TornTail = true
			raw = raw[:0]
		} else {
			raw = raw[magicLen:]
		}
		for len(raw) > 0 {
			payload, n, perr := parseFrame(raw)
			if perr != nil {
				info.TornTail = true
				break
			}
			rec, derr := decodeRecord(payload)
			if derr != nil {
				return Info{}, derr
			}
			if rec.Epoch > snapEpoch {
				if rec.Epoch != ws.Epoch()+1 {
					return Info{}, fmt.Errorf("%w: WAL epoch %d after %d", ErrCorrupt, rec.Epoch, ws.Epoch())
				}
				if aerr := applyRecord(ws, rec); aerr != nil {
					return Info{}, fmt.Errorf("%w: %v", ErrCorrupt, aerr)
				}
			}
			raw = raw[n:]
			info.TailRecords++
		}
	}
	info.Epoch = ws.Epoch()
	info.Edges = ws.NumEdges()
	info.Nodes = ws.NumNodes()
	info.Components = ws.NumComponents()
	info.Acyclic = ws.Analysis().Verdict()
	d := ws.ContentDigest()
	info.Digest = fmt.Sprintf("%016x%016x", d.Hi, d.Lo)
	return info, nil
}

// ScanWAL streams a WAL file's records in order, stopping at a torn tail
// (reported via the return, not an error). The callback returning an error
// stops the scan.
func ScanWAL(path string, fn func(rec dynamic.JournalRecord) error) (torn bool, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return false, err
	}
	if len(raw) < magicLen || string(raw[:magicLen]) != walMagic {
		if len(raw) >= magicLen {
			return false, fmt.Errorf("%w: bad WAL magic in %s", ErrCorrupt, path)
		}
		return true, nil
	}
	raw = raw[magicLen:]
	for len(raw) > 0 {
		payload, n, perr := parseFrame(raw)
		if perr != nil {
			return true, nil
		}
		rec, derr := decodeRecord(payload)
		if derr != nil {
			return false, derr
		}
		if err := fn(rec); err != nil {
			return false, err
		}
		raw = raw[n:]
	}
	return false, nil
}

// ListSessions returns the names of the session directories under a data
// directory (directories holding a WAL or snapshot), sorted.
func ListSessions(dataDir string) ([]string, error) {
	entries, err := os.ReadDir(dataDir)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		for _, name := range []string{WALFile, SnapshotFile} {
			if _, err := os.Stat(filepath.Join(dataDir, e.Name(), name)); err == nil {
				out = append(out, e.Name())
				break
			}
		}
	}
	sort.Strings(out)
	return out, nil
}
