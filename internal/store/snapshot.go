package store

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/dynamic"
	"repro/internal/hypergraph"
)

// encodeSnapshot appends the snapshot payload for st to buf:
//
//	uvarint epoch · u64 digest.Hi · u64 digest.Lo
//	uvarint slot count · per slot: uvarint gen · u8 alive ·
//	  (alive only) uvarint node count · (uvarint len + bytes)*
//	uvarint free count · per entry: uvarint slot
//
// The digest is the canonical (unkeyed) content fingerprint of the alive
// edges — a pure function of the schema, so an offline verifier recomputes
// it without the serving engine's digest key.
func encodeSnapshot(buf []byte, st *dynamic.State) []byte {
	d := stateDigest(st)
	buf = binary.AppendUvarint(buf, st.Epoch)
	buf = binary.LittleEndian.AppendUint64(buf, d.Hi)
	buf = binary.LittleEndian.AppendUint64(buf, d.Lo)
	buf = binary.AppendUvarint(buf, uint64(len(st.Slots)))
	for _, es := range st.Slots {
		buf = binary.AppendUvarint(buf, uint64(es.Gen))
		if !es.Alive {
			buf = append(buf, 0)
			continue
		}
		buf = append(buf, 1)
		buf = binary.AppendUvarint(buf, uint64(len(es.Nodes)))
		for _, n := range es.Nodes {
			buf = appendString(buf, n)
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(st.FreeEdges)))
	for _, slot := range st.FreeEdges {
		buf = binary.AppendUvarint(buf, uint64(slot))
	}
	return buf
}

// decodeSnapshot parses a snapshot payload and cross-checks the embedded
// content digest against the decoded state — a guard against codec bugs,
// on top of the frame checksum's guard against damaged bytes.
func decodeSnapshot(payload []byte) (*dynamic.State, error) {
	st := &dynamic.State{}
	b := payload
	var err error
	if st.Epoch, b, err = readUvarint(b); err != nil {
		return nil, err
	}
	if len(b) < 16 {
		return nil, fmt.Errorf("%w: truncated snapshot digest", ErrCorrupt)
	}
	want := hypergraph.Fingerprint128{
		Hi: binary.LittleEndian.Uint64(b),
		Lo: binary.LittleEndian.Uint64(b[8:]),
	}
	b = b[16:]
	var nslots uint64
	if nslots, b, err = readUvarint(b); err != nil {
		return nil, err
	}
	if nslots > uint64(len(b)) { // each slot costs ≥ 1 byte
		return nil, fmt.Errorf("%w: slot count %d exceeds payload", ErrCorrupt, nslots)
	}
	st.Slots = make([]dynamic.EdgeState, nslots)
	for i := range st.Slots {
		var gen uint64
		if gen, b, err = readUvarint(b); err != nil {
			return nil, err
		}
		if len(b) == 0 {
			return nil, fmt.Errorf("%w: truncated slot %d", ErrCorrupt, i)
		}
		alive := b[0]
		b = b[1:]
		st.Slots[i].Gen = uint32(gen)
		if alive == 0 {
			continue
		}
		st.Slots[i].Alive = true
		var count uint64
		if count, b, err = readUvarint(b); err != nil {
			return nil, err
		}
		if count > uint64(len(b)) {
			return nil, fmt.Errorf("%w: node count %d exceeds payload", ErrCorrupt, count)
		}
		st.Slots[i].Nodes = make([]string, count)
		for j := range st.Slots[i].Nodes {
			if st.Slots[i].Nodes[j], b, err = readString(b); err != nil {
				return nil, err
			}
		}
	}
	var nfree uint64
	if nfree, b, err = readUvarint(b); err != nil {
		return nil, err
	}
	if nfree > uint64(len(b)+1) {
		return nil, fmt.Errorf("%w: free count %d exceeds payload", ErrCorrupt, nfree)
	}
	st.FreeEdges = make([]int32, nfree)
	for i := range st.FreeEdges {
		var slot uint64
		if slot, b, err = readUvarint(b); err != nil {
			return nil, err
		}
		st.FreeEdges[i] = int32(slot)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after snapshot", ErrCorrupt, len(b))
	}
	if got := stateDigest(st); got != want {
		return nil, fmt.Errorf("%w: snapshot digest mismatch (got %016x%016x want %016x%016x)",
			ErrCorrupt, got.Hi, got.Lo, want.Hi, want.Lo)
	}
	return st, nil
}

// stateDigest folds the canonical (unkeyed) per-edge digests of a state's
// alive slots — the content fingerprint the snapshot embeds and recovery
// re-derives.
func stateDigest(st *dynamic.State) hypergraph.Fingerprint128 {
	var sum hypergraph.Fingerprint128
	for _, es := range st.Slots {
		if es.Alive {
			sum = sum.Add(hypergraph.EdgeDigestNames(es.Nodes))
		}
	}
	return sum
}

// writeSnapshotFile writes st to path atomically: encode to path+".tmp",
// fsync, rename over path, fsync the directory. A crash at any point leaves
// either the old snapshot or the new one, never a blend. Returns the
// snapshot's size in bytes.
func writeSnapshotFile(path string, st *dynamic.State) (int64, error) {
	buf := make([]byte, 0, 4096)
	buf = append(buf, snapMagic...)
	buf = appendFrame(buf, encodeSnapshot(nil, st))
	tmp := path + ".tmp"
	if err := writeFileSync(tmp, buf); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		return 0, err
	}
	syncDir(filepath.Dir(path))
	return int64(len(buf)), nil
}

// readSnapshotFile loads and validates a snapshot file. A missing file is
// reported as os.ErrNotExist (a fresh session, not an error).
func readSnapshotFile(path string) (*dynamic.State, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < magicLen || string(raw[:magicLen]) != snapMagic {
		return nil, fmt.Errorf("%w: bad snapshot magic in %s", ErrCorrupt, path)
	}
	payload, size, err := parseFrame(raw[magicLen:])
	if err != nil {
		return nil, fmt.Errorf("%w: snapshot frame in %s does not parse", ErrCorrupt, path)
	}
	if magicLen+size != len(raw) {
		return nil, fmt.Errorf("%w: %d trailing bytes after snapshot frame in %s", ErrCorrupt, len(raw)-magicLen-size, path)
	}
	return decodeSnapshot(payload)
}

func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
// Best-effort: some filesystems refuse directory fsync, and the rename
// itself already ordered the data writes.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
