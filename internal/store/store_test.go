package store

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"
	"time"

	"repro/internal/dynamic"
	"repro/internal/fault"
)

// --- script machinery: deterministic random edit scripts whose replay is a
// pure function of the op sequence, so a recovered workspace can be
// compared against a never-restarted mirror (or a prefix replay). ---

type scriptOp struct {
	kind      int // 0 add, 1 remove, 2 rename
	names     []string
	removeIdx int
	old, new  string
}

// applyOp drives one op into ws. Remove targets are resolved by rank in the
// current sorted id list, so the op sequence replays identically on any
// workspace holding the same state.
func applyOp(ws *dynamic.Workspace, op scriptOp) error {
	switch op.kind {
	case 0:
		_, err := ws.AddEdge(op.names...)
		return err
	case 1:
		ids := ws.EdgeIDs()
		return ws.RemoveEdge(ids[op.removeIdx%len(ids)])
	default:
		return ws.RenameNode(op.old, op.new)
	}
}

// genScript produces n ops, each valid in sequence (applied to a model as
// generated), so every op acknowledges and epoch == ops applied.
func genScript(t testing.TB, rng *rand.Rand, n int) ([]scriptOp, *dynamic.Workspace) {
	t.Helper()
	model := dynamic.New()
	edgeNames := map[int][]string{} // live edge id -> its node names
	nameRefs := map[string]int{}    // covered name -> live edge refcount
	renameSeq := 0
	ops := make([]scriptOp, 0, n)
	for len(ops) < n {
		var op scriptOp
		switch r := rng.Intn(10); {
		case r < 6 || len(edgeNames) == 0:
			k := 1 + rng.Intn(3)
			op = scriptOp{kind: 0, names: make([]string, k)}
			for i := range op.names {
				op.names[i] = fmt.Sprintf("n%d", rng.Intn(25))
			}
		case r < 9:
			op = scriptOp{kind: 1, removeIdx: rng.Intn(len(edgeNames))}
		default:
			var covered []string
			for name := range nameRefs {
				covered = append(covered, name)
			}
			if len(covered) == 0 {
				continue
			}
			renameSeq++
			op = scriptOp{kind: 2, old: covered[rng.Intn(len(covered))], new: fmt.Sprintf("r%d", renameSeq)}
		}
		// Maintain the model (and the name/edge bookkeeping the generator
		// draws choices from).
		switch op.kind {
		case 0:
			id, err := model.AddEdge(op.names...)
			if err != nil {
				t.Fatal(err)
			}
			names, err := model.EdgeNodes(id)
			if err != nil {
				t.Fatal(err)
			}
			edgeNames[id] = names
			for _, name := range names {
				nameRefs[name]++
			}
		case 1:
			ids := model.EdgeIDs()
			id := ids[op.removeIdx%len(ids)]
			if err := model.RemoveEdge(id); err != nil {
				t.Fatal(err)
			}
			for _, name := range edgeNames[id] {
				if nameRefs[name]--; nameRefs[name] == 0 {
					delete(nameRefs, name)
				}
			}
			delete(edgeNames, id)
		case 2:
			if err := model.RenameNode(op.old, op.new); err != nil {
				t.Fatal(err)
			}
			nameRefs[op.new] = nameRefs[op.old]
			delete(nameRefs, op.old)
			for id, names := range edgeNames {
				for i, name := range names {
					if name == op.old {
						names[i] = op.new
					}
				}
				_ = id
			}
		}
		ops = append(ops, op)
	}
	return ops, model
}

// wsEqual asserts two workspaces are observationally identical.
func wsEqual(t testing.TB, got, want *dynamic.Workspace) {
	t.Helper()
	if got.Epoch() != want.Epoch() {
		t.Fatalf("epoch %d, want %d", got.Epoch(), want.Epoch())
	}
	if !reflect.DeepEqual(got.EdgeIDs(), want.EdgeIDs()) {
		t.Fatalf("edge ids %v, want %v", got.EdgeIDs(), want.EdgeIDs())
	}
	for _, id := range want.EdgeIDs() {
		g, err1 := got.EdgeNodes(id)
		w, err2 := want.EdgeNodes(id)
		if err1 != nil || err2 != nil {
			t.Fatalf("EdgeNodes(%d): %v / %v", id, err1, err2)
		}
		if !reflect.DeepEqual(g, w) {
			t.Fatalf("edge %d nodes %v, want %v", id, g, w)
		}
	}
	if got.ContentDigest() != want.ContentDigest() {
		t.Fatal("content digests differ")
	}
	if !reflect.DeepEqual(got.ComponentDigests(), want.ComponentDigests()) {
		t.Fatal("component digests differ")
	}
	if got.Analysis().Verdict() != want.Analysis().Verdict() {
		t.Fatal("verdicts differ")
	}
}

func TestCreateOpenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, ws, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	ops, mirror := genScript(t, rng, 60)
	for _, op := range ops {
		if err := applyOp(ws, op); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Dirty() {
		t.Fatal("session with unsnapshotted edits reports clean")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, re, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	wsEqual(t, re, mirror)
	// The recovered session keeps acknowledging (epoch contiguity carried
	// over) and the recovered workspace issues the same future ids.
	ops2, _ := genScript(t, rand.New(rand.NewSource(2)), 5)
	for _, op := range ops2 {
		if op.kind != 0 {
			continue
		}
		idGot, err1 := re.AddEdge(op.names...)
		idWant, err2 := mirror.AddEdge(op.names...)
		if err1 != nil || err2 != nil || idGot != idWant {
			t.Fatalf("post-recovery AddEdge: id %d/%v, want %d/%v", idGot, err1, idWant, err2)
		}
	}
}

func TestCreateRefusesExistingSession(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, _, err := Create(dir, Options{}); err == nil {
		t.Fatal("Create over an existing session dir succeeded")
	}
}

func TestCompactionAndStaleHeadRecovery(t *testing.T) {
	dir := t.TempDir()
	s, ws, err := Create(dir, Options{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	ops, mirror := genScript(t, rng, 80)
	for i, op := range ops {
		if err := applyOp(ws, op); err != nil {
			t.Fatal(err)
		}
		if i == 39 {
			preWAL, rerr := os.ReadFile(filepath.Join(dir, WALFile))
			if rerr != nil {
				t.Fatal(rerr)
			}
			if err := s.Compact(); err != nil {
				t.Fatal(err)
			}
			if s.Dirty() {
				t.Fatal("freshly compacted session reports dirty")
			}
			// Simulate a crash *between* the snapshot rename and the WAL
			// rewrite: restore the pre-compaction log (full history) in
			// front of whatever lands after. Recovery must skip the stale
			// head records the snapshot already covers.
			t.Cleanup(func() {})
			defer func(stale []byte) {
				cur, rerr := os.ReadFile(filepath.Join(dir, WALFile))
				if rerr != nil {
					t.Fatal(rerr)
				}
				merged := append(append([]byte(nil), stale...), cur[magicLen:]...)
				if err := os.WriteFile(filepath.Join(dir, WALFile), merged, 0o644); err != nil {
					t.Fatal(err)
				}
				_, re, oerr := Open(dir, Options{})
				if oerr != nil {
					t.Fatal(oerr)
				}
				wsEqual(t, re, mirror)
			}(preWAL)
		}
	}
	if err := s.Compact(); err != nil { // second compaction over the tail
		t.Fatal(err)
	}
	s.Close()
	s2, re, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s2.Close()
	wsEqual(t, re, mirror)
}

func TestAutoCompactionTriggers(t *testing.T) {
	dir := t.TempDir()
	s, ws, err := Create(dir, Options{SnapshotEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := ws.AddEdge(fmt.Sprintf("a%d", i), fmt.Sprintf("a%d", i+1)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(filepath.Join(dir, SnapshotFile)); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("threshold compaction never produced a snapshot")
		}
		time.Sleep(5 * time.Millisecond)
	}
	s.Close()
	_, re, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wsEqual(t, re, ws)
}

// diffScripts returns the differential-harness scale: the CI smoke sets
// STORE_DIFF_SCRIPTS past 10^4; plain `go test` runs a fast slice.
func diffScripts(t *testing.T) int {
	if v := os.Getenv("STORE_DIFF_SCRIPTS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("STORE_DIFF_SCRIPTS=%q: %v", v, err)
		}
		return n
	}
	if testing.Short() {
		return 40
	}
	return 200
}

// TestDifferentialRecovery is the harness the tentpole's correctness rests
// on: for each random script, drive a persisted workspace through random
// crash/recover points and compactions, mirror every edit into a
// never-restarted workspace, and require observational identity at the end.
func TestDifferentialRecovery(t *testing.T) {
	n := diffScripts(t)
	root := t.TempDir()
	for seed := 0; seed < n; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		ops, _ := genScript(t, rng, 10+rng.Intn(30))
		dir := filepath.Join(root, fmt.Sprintf("s%d", seed%64))
		os.RemoveAll(dir)

		mirror := dynamic.New()
		s, ws, err := Create(dir, Options{SnapshotEvery: -1})
		if err != nil {
			t.Fatal(err)
		}
		for _, op := range ops {
			if err := applyOp(ws, op); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if err := applyOp(mirror, op); err != nil {
				t.Fatalf("seed %d mirror: %v", seed, err)
			}
			switch rng.Intn(12) {
			case 0:
				if err := s.Compact(); err != nil {
					t.Fatalf("seed %d compact: %v", seed, err)
				}
			case 1:
				// Crash (abandon without Close) and recover mid-script.
				s, ws, err = Open(dir, Options{SnapshotEvery: -1})
				if err != nil {
					t.Fatalf("seed %d reopen: %v", seed, err)
				}
			}
		}
		// Final crash + recovery, then compare against the mirror.
		_, re, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("seed %d final open: %v", seed, err)
		}
		wsEqual(t, re, mirror)
	}
}

// TestDifferentialTornTail truncates (or bit-flips) the WAL at a random
// point — the bytes a crash mid-append leaves — and requires recovery to
// land exactly on the acknowledged prefix: the state produced by replaying
// the first E script ops, where E is the recovered epoch.
func TestDifferentialTornTail(t *testing.T) {
	n := diffScripts(t)
	root := t.TempDir()
	for seed := 0; seed < n; seed++ {
		rng := rand.New(rand.NewSource(int64(seed) + 1<<32))
		ops, _ := genScript(t, rng, 10+rng.Intn(25))
		dir := filepath.Join(root, fmt.Sprintf("s%d", seed%64))
		os.RemoveAll(dir)
		s, ws, err := Create(dir, Options{SnapshotEvery: -1})
		if err != nil {
			t.Fatal(err)
		}
		for _, op := range ops {
			if err := applyOp(ws, op); err != nil {
				t.Fatal(err)
			}
		}
		s.Close()

		path := filepath.Join(dir, WALFile)
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if rng.Intn(2) == 0 && len(raw) > magicLen {
			raw = raw[:magicLen+rng.Intn(len(raw)-magicLen)] // torn tail
		} else if len(raw) > magicLen {
			raw[magicLen+rng.Intn(len(raw)-magicLen)] ^= 1 << uint(rng.Intn(8)) // bit flip
		}
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}

		s2, re, err := Open(dir, Options{})
		if err != nil {
			// A flip that lands in a record body (checksum passes only for
			// the original bytes, so this is a flip in an already-parsed
			// region header…) cannot happen: any damage parses as a torn
			// tail or corrupt record. Corrupt-record detection is a valid
			// outcome for flips; silent wrong state is not.
			if errors.Is(err, ErrCorrupt) {
				continue
			}
			t.Fatalf("seed %d: open after damage: %v", seed, err)
		}
		prefix := dynamic.New()
		for i := uint64(0); i < re.Epoch(); i++ {
			if err := applyOp(prefix, ops[i]); err != nil {
				t.Fatalf("seed %d prefix replay: %v", seed, err)
			}
		}
		wsEqual(t, re, prefix)
		// The repaired log must now be clean: reopen hits no torn tail.
		s2.Close()
		if _, _, err := Open(dir, Options{}); err != nil {
			t.Fatalf("seed %d: reopen after repair: %v", seed, err)
		}
	}
}

func TestAppendFaultNeverAcknowledges(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	s, ws, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ws.AddEdge("a", "b"); err != nil {
		t.Fatal(err)
	}

	// A plain injected error aborts the edit but leaves the session healthy.
	boom := errors.New("injected disk error")
	fault.Activate(fault.StoreAppend, fault.Injection{Kind: fault.KindError, Err: boom, Count: 1})
	if _, err := ws.AddEdge("b", "c"); !errors.Is(err, boom) {
		t.Fatalf("AddEdge under injected append error: %v", err)
	}
	if ws.Epoch() != 1 || ws.NumEdges() != 1 {
		t.Fatal("aborted edit mutated the workspace")
	}
	if _, err := ws.AddEdge("b", "c"); err != nil {
		t.Fatalf("session did not stay healthy after plain error: %v", err)
	}

	// A torn write fail-stops: the edit aborts, later edits are refused,
	// and recovery lands on the acknowledged prefix (the half-frame is
	// truncated away).
	fault.Activate(fault.StoreAppend, fault.Injection{Kind: fault.KindTorn, Count: 1})
	if _, err := ws.AddEdge("c", "d"); !errors.Is(err, fault.ErrTorn) {
		t.Fatalf("AddEdge under torn write: %v", err)
	}
	if _, err := ws.AddEdge("d", "e"); !errors.Is(err, ErrSessionFailed) {
		t.Fatalf("session accepted an edit after fail-stop: %v", err)
	}
	if !errors.Is(s.Err(), ErrSessionFailed) {
		t.Fatal("Err does not report the fail-stop")
	}
	fault.Reset()

	_, re, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if re.Epoch() != 2 || re.NumEdges() != 2 {
		t.Fatalf("recovered to epoch %d with %d edges, want 2/2", re.Epoch(), re.NumEdges())
	}
}

func TestSnapshotFaultLeavesLiveSnapshotIntact(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	s, ws, err := Create(dir, Options{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := ws.AddEdge(fmt.Sprintf("x%d", i), fmt.Sprintf("x%d", i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	goodSnap, err := os.ReadFile(filepath.Join(dir, SnapshotFile))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ws.AddEdge("y0", "y1"); err != nil {
		t.Fatal(err)
	}

	fault.Activate(fault.StoreSnapshot, fault.Injection{Kind: fault.KindTorn, Count: 1})
	if err := s.Compact(); !errors.Is(err, fault.ErrTorn) {
		t.Fatalf("Compact under torn snapshot write: %v", err)
	}
	cur, err := os.ReadFile(filepath.Join(dir, SnapshotFile))
	if err != nil || !reflect.DeepEqual(cur, goodSnap) {
		t.Fatal("torn compaction touched the live snapshot")
	}
	// The session keeps serving — compaction is advisory.
	if _, err := ws.AddEdge("y1", "y2"); err != nil {
		t.Fatalf("append after failed compaction: %v", err)
	}
	fault.Reset()
	s.Close()
	_, re, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wsEqual(t, re, ws)
}

func TestRecoverFault(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	s, _, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	boom := errors.New("injected recover error")
	fault.Activate(fault.StoreRecover, fault.Injection{Kind: fault.KindError, Err: boom})
	if _, _, err := Open(dir, Options{}); !errors.Is(err, boom) {
		t.Fatalf("Open under injected recover error: %v", err)
	}
	if _, err := Verify(dir); !errors.Is(err, boom) {
		t.Fatalf("Verify under injected recover error: %v", err)
	}
}

func TestVerifyMatchesOpen(t *testing.T) {
	dir := t.TempDir()
	s, ws, err := Create(dir, Options{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	ops, _ := genScript(t, rand.New(rand.NewSource(11)), 50)
	for i, op := range ops {
		if err := applyOp(ws, op); err != nil {
			t.Fatal(err)
		}
		if i == 24 {
			if err := s.Compact(); err != nil {
				t.Fatal(err)
			}
		}
	}
	s.Close()
	info, err := Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.Epoch != ws.Epoch() || info.Edges != ws.NumEdges() || info.Nodes != ws.NumNodes() {
		t.Fatalf("Verify reported %+v, workspace has epoch %d, %d edges, %d nodes",
			info, ws.Epoch(), ws.NumEdges(), ws.NumNodes())
	}
	if info.SnapshotEpoch != 25 {
		t.Fatalf("snapshot epoch %d, want 25", info.SnapshotEpoch)
	}
	d := ws.ContentDigest()
	if info.Digest != fmt.Sprintf("%016x%016x", d.Hi, d.Lo) {
		t.Fatal("Verify digest disagrees with the live workspace")
	}
	if info.Acyclic != ws.Analysis().Verdict() {
		t.Fatal("Verify verdict disagrees with the live workspace")
	}
	if info.TornTail {
		t.Fatal("clean session reported a torn tail")
	}

	// Tear the tail: Verify reports it without repairing the file.
	raw, _ := os.ReadFile(filepath.Join(dir, WALFile))
	os.WriteFile(filepath.Join(dir, WALFile), raw[:len(raw)-3], 0o644)
	info2, err := Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !info2.TornTail || info2.Epoch != info.Epoch-1 {
		t.Fatalf("torn Verify reported %+v", info2)
	}
	after, _ := os.ReadFile(filepath.Join(dir, WALFile))
	if len(after) != len(raw)-3 {
		t.Fatal("Verify modified the WAL")
	}
}

func TestScanWAL(t *testing.T) {
	dir := t.TempDir()
	s, ws, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ws.AddEdge("a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := ws.RenameNode("a", "z"); err != nil {
		t.Fatal(err)
	}
	s.Close()
	var recs []dynamic.JournalRecord
	torn, err := ScanWAL(filepath.Join(dir, WALFile), func(rec dynamic.JournalRecord) error {
		recs = append(recs, rec)
		return nil
	})
	if err != nil || torn {
		t.Fatalf("scan: torn=%v err=%v", torn, err)
	}
	if len(recs) != 2 || recs[0].Op != dynamic.JournalAddEdge || recs[1].Op != dynamic.JournalRenameNode {
		t.Fatalf("scanned %+v", recs)
	}
	if recs[0].Epoch != 1 || recs[1].Epoch != 2 {
		t.Fatalf("scanned epochs %d, %d", recs[0].Epoch, recs[1].Epoch)
	}
}

func TestListSessions(t *testing.T) {
	root := t.TempDir()
	for _, id := range []string{"ws-2", "ws-1"} {
		s, _, err := Create(filepath.Join(root, id), Options{})
		if err != nil {
			t.Fatal(err)
		}
		s.Close()
	}
	os.MkdirAll(filepath.Join(root, "not-a-session"), 0o755)
	got, err := ListSessions(root)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []string{"ws-1", "ws-2"}) {
		t.Fatalf("ListSessions = %v", got)
	}
	if got, err := ListSessions(filepath.Join(root, "missing")); err != nil || got != nil {
		t.Fatalf("missing data dir: %v, %v", got, err)
	}
}
