package tableau

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/gen"
	"repro/internal/hypergraph"
)

// TestAblationSameResult: disabling the pinned fast path must not change
// the minimization outcome, only its cost.
func TestAblationSameResult(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	graphs := []*hypergraph.Hypergraph{
		hypergraph.Fig1(), hypergraph.Fig5(), hypergraph.Triangle(),
		hypergraph.CyclicCounterexample(),
	}
	for i := 0; i < 15; i++ {
		graphs = append(graphs, gen.Random(rng, gen.RandomSpec{Nodes: 7, Edges: 5, MinArity: 2, MaxArity: 4}))
	}
	for _, h := range graphs {
		x := gen.RandomNodeSubset(rng, h, 0.3)
		tab := New(h, x)
		fast := tab.MinimizeOpt(Options{})
		slow := tab.MinimizeOpt(Options{DisableFastPath: true})
		if !fast.Hypergraph().EqualEdges(slow.Hypergraph()) {
			t.Fatalf("%v X=%v: ablation changed the result", h, h.NodeNames(x))
		}
	}
}

// TestStatsAccounting: the stats must add up — every removed row is counted
// exactly once.
func TestStatsAccounting(t *testing.T) {
	h := hypergraph.Fig1()
	mn := Reduce(h, h.MustSet("A", "D"))
	removed := h.NumEdges() - len(mn.Rows)
	if mn.Stats.PinnedRemovals+mn.Stats.GeneralRemovals != removed {
		t.Fatalf("stats %+v do not account for %d removals", mn.Stats, removed)
	}
	// With no sacred nodes, the triangle needs the general fold.
	tri := Reduce(hypergraph.Triangle(), bitset.Set{})
	if tri.Stats.GeneralRemovals == 0 {
		t.Fatalf("triangle fold must use the general path: %+v", tri.Stats)
	}
}

// BenchmarkMinimizeFastPathAblation measures the value of the pinned-first
// design choice called out in DESIGN.md.
func BenchmarkMinimizeFastPathAblation(b *testing.B) {
	for _, m := range []int{8, 16, 32} {
		h := gen.RandomAcyclic(rand.New(rand.NewSource(int64(m))), gen.RandomSpec{Edges: m, MinArity: 2, MaxArity: 4})
		x := gen.RandomNodeSubset(rand.New(rand.NewSource(1)), h, 0.2)
		for _, opt := range []struct {
			name string
			o    Options
		}{
			{"fastpath", Options{}},
			{"general-only", Options{DisableFastPath: true}},
		} {
			b.Run(fmt.Sprintf("%s/m=%d", opt.name, m), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					New(h, x).MinimizeOpt(opt.o)
				}
			})
		}
	}
}
