// Package tableau implements the tableaux and tableau reduction of
// Maier & Ullman §3, following the tableau formalism of Aho, Sagiv and
// Ullman.
//
// The tableau of a hypergraph H with sacred node set X has one column per
// node and one row per edge. Column c's *special symbol* appears exactly in
// the rows whose edge contains c; special symbols of sacred nodes are
// *distinguished* (they appear in the summary). Every other cell holds a
// symbol unique to it.
//
// A *row mapping* h sends rows to a target subset of rows such that
//
//	(1) h is the identity on the target subset;
//	(2) if a symbol appears in rows r₁ and r₂, then h(r₁) and h(r₂) agree on
//	    that column (only special symbols can repeat, so this constrains the
//	    rows of each multiply-occurring column);
//	(3) a distinguished symbol in row r also appears (same column) in h(r).
//
// Row mappings form a finite Church–Rosser system, so each tableau has a
// unique minimal target subset, computed here by greedy row elimination.
// TR(H, X) reads the minimal rows back as partial edges: a non-sacred node
// whose special symbol survives in only one minimal row is dropped.
package tableau

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bitset"
	"repro/internal/hypergraph"
)

// Tableau is the tableau of a hypergraph with a sacred node set. It is
// immutable after construction.
type Tableau struct {
	H      *hypergraph.Hypergraph
	Sacred bitset.Set
	// occ[c] is the number of rows whose edge contains node c.
	occ map[int]int
	// multi is the set of nodes whose special symbol occurs in >= 2 rows.
	multi bitset.Set
}

// New builds the tableau for h with the given sacred nodes. Sacred nodes
// outside h's node set are ignored.
func New(h *hypergraph.Hypergraph, sacred bitset.Set) *Tableau {
	t := &Tableau{
		H:      h,
		Sacred: sacred.And(h.NodeSet()),
		occ:    map[int]int{},
	}
	for _, e := range h.Edges() {
		e.ForEach(func(c int) { t.occ[c]++ })
	}
	for c, n := range t.occ {
		if n >= 2 {
			t.multi.Add(c)
		}
	}
	return t
}

// NumRows returns the number of rows (= edges of H).
func (t *Tableau) NumRows() int { return t.H.NumEdges() }

// RowMapping assigns to each row (by edge index) its image row. A value of
// -1 marks rows outside the mapping's domain.
type RowMapping []int

// Validate checks the three row-mapping conditions for the mapping restricted
// to the given domain rows; target rows are those r with m[r] == r. It
// returns a descriptive error on the first violation.
func (t *Tableau) Validate(m RowMapping, domain []int) error {
	inDomain := map[int]bool{}
	for _, r := range domain {
		inDomain[r] = true
	}
	target := map[int]bool{}
	for _, r := range domain {
		if m[r] == r {
			target[r] = true
		}
	}
	for _, r := range domain {
		img := m[r]
		if img < 0 || img >= t.NumRows() || !inDomain[img] {
			return fmt.Errorf("tableau: row %d maps outside the domain", r)
		}
		if !target[img] {
			return fmt.Errorf("tableau: row %d maps to non-target row %d", r, img)
		}
		// Condition (3): distinguished symbols are preserved.
		sac := t.H.Edge(r).And(t.Sacred)
		if !sac.IsSubset(t.H.Edge(img)) {
			return fmt.Errorf("tableau: row %d drops distinguished symbol(s) %v",
				r, t.H.NodeNames(sac.AndNot(t.H.Edge(img))))
		}
	}
	// Condition (2) per multiply-occurring column, over domain rows.
	var err error
	t.multi.ForEach(func(c int) {
		if err != nil {
			return
		}
		var rows []int
		for _, r := range domain {
			if t.H.Edge(r).Contains(c) {
				rows = append(rows, r)
			}
		}
		if len(rows) < 2 {
			return
		}
		allSame, allContain := true, true
		for _, r := range rows {
			if m[r] != m[rows[0]] {
				allSame = false
			}
			if !t.H.Edge(m[r]).Contains(c) {
				allContain = false
			}
		}
		if !allSame && !allContain {
			err = fmt.Errorf("tableau: column %s images neither agree on one row nor all keep the symbol", t.H.NodeName(c))
		}
	})
	return err
}

// FindMapping searches for a row mapping from the domain rows onto the
// target rows (target ⊆ domain) satisfying all three conditions, i.e. with
// the target rows pinned to themselves. It returns the mapping and true, or
// nil and false if none exists.
func (t *Tableau) FindMapping(domain, target []int) (RowMapping, bool) {
	return t.findHom(domain, target, true)
}

// FindHom searches for a homomorphism from the domain rows into the target
// rows satisfying conditions (2) and (3) but *not* the identity condition
// (1): target rows may move within the target. Row removal during
// minimization needs this generality — folding several rows at once is
// sometimes the only way to shrink (e.g. a triangle with no sacred nodes).
func (t *Tableau) FindHom(domain, target []int) (RowMapping, bool) {
	return t.findHom(domain, target, false)
}

func (t *Tableau) findHom(domain, target []int, pinTarget bool) (RowMapping, bool) {
	inTarget := map[int]bool{}
	for _, r := range target {
		inTarget[r] = true
	}
	m := make(RowMapping, t.NumRows())
	for i := range m {
		m[i] = -1
	}
	var free []int
	for _, r := range domain {
		if pinTarget && inTarget[r] {
			m[r] = r
		} else {
			free = append(free, r)
		}
	}
	// colRows[c] = domain rows containing node c, for multi columns.
	colRows := map[int][]int{}
	t.multi.ForEach(func(c int) {
		for _, r := range domain {
			if t.H.Edge(r).Contains(c) {
				colRows[c] = append(colRows[c], r)
			}
		}
	})
	// Candidate images per free row: targets keeping the row's
	// distinguished symbols (condition 3).
	cands := make(map[int][]int, len(free))
	for _, r := range free {
		sac := t.H.Edge(r).And(t.Sacred)
		for _, tgt := range target {
			if sac.IsSubset(t.H.Edge(tgt)) {
				cands[r] = append(cands[r], tgt)
			}
		}
		if len(cands[r]) == 0 {
			return nil, false
		}
	}
	// Most-constrained-first static ordering keeps the search shallow.
	sort.SliceStable(free, func(i, j int) bool {
		return len(cands[free[i]]) < len(cands[free[j]])
	})
	s := &homSearch{t: t, m: m, colRows: colRows, cands: cands}
	if !s.solve(free, 0) {
		return nil, false
	}
	return m, true
}

// homSearch is the backtracking state for findHom: assignment with
// condition-(2) unit propagation (an image lacking a shared symbol forces
// every row of that column onto the same image).
type homSearch struct {
	t       *Tableau
	m       RowMapping
	colRows map[int][]int
	cands   map[int][]int
}

func (s *homSearch) solve(free []int, i int) bool {
	for i < len(free) && s.m[free[i]] >= 0 {
		i++ // already forced by propagation
	}
	if i == len(free) {
		return true
	}
	r := free[i]
	for _, cand := range s.cands[r] {
		trail, ok := s.propagate(r, cand)
		if ok && s.solve(free, i+1) {
			return true
		}
		for _, x := range trail {
			s.m[x] = -1
		}
	}
	return false
}

// propagate assigns m[r] = cand and closes the condition-(2) consequences,
// returning the assignments made (for undo) and whether the state stays
// consistent. On failure the trail is already unwound.
func (s *homSearch) propagate(r, cand int) ([]int, bool) {
	t := s.t
	trail := []int{r}
	s.m[r] = cand
	queue := []int{r}
	fail := func() ([]int, bool) {
		for _, x := range trail {
			s.m[x] = -1
		}
		return nil, false
	}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		img := s.m[x]
		imgEdge := t.H.Edge(img)
		conflict := false
		t.multi.And(t.H.Edge(x)).ForEach(func(c int) {
			if conflict {
				return
			}
			rows := s.colRows[c]
			if len(rows) < 2 {
				return
			}
			if imgEdge.Contains(c) {
				// Consistent unless some other row of the column already
				// maps to a c-less image different from img.
				for _, rr := range rows {
					o := s.m[rr]
					if o >= 0 && o != img && !t.H.Edge(o).Contains(c) {
						conflict = true
						return
					}
				}
				return
			}
			// img lacks c: every row of this column must share img.
			for _, rr := range rows {
				switch o := s.m[rr]; {
				case o == img:
					// already agreed
				case o >= 0:
					conflict = true
					return
				default:
					// Forced assignment; must respect condition (3).
					if !t.H.Edge(rr).And(t.Sacred).IsSubset(imgEdge) {
						conflict = true
						return
					}
					// Forced rows must be assignable at all (pinned target
					// rows have m set already, so rr is free here).
					s.m[rr] = img
					trail = append(trail, rr)
					queue = append(queue, rr)
				}
			}
		})
		if conflict {
			return fail()
		}
	}
	return trail, true
}

// Minimization is the outcome of reducing a tableau: the unique minimal row
// subset (up to symbol renaming) together with the composed row mapping from
// all original rows onto it.
type Minimization struct {
	Tableau *Tableau
	// Rows is the sorted list of surviving row indices (edge ids of H).
	Rows []int
	// Mapping sends every original row to its image among Rows.
	Mapping RowMapping
	// Stats records how the minimization proceeded.
	Stats Stats
}

// Stats instruments a minimization run, supporting the fast-path ablation
// benchmarks: how many rows fell to the cheap pinned search versus the
// general fold search, and how many removal probes failed.
type Stats struct {
	// PinnedRemovals counts rows removed with all other rows held fixed.
	PinnedRemovals int
	// GeneralRemovals counts rows that needed a multi-row fold.
	GeneralRemovals int
	// FailedProbes counts removal attempts with no homomorphism at all.
	FailedProbes int
}

// Options tunes Minimize. The zero value is the production configuration.
type Options struct {
	// DisableFastPath skips the pinned search and always runs the general
	// fold search. Results are identical; only cost differs (ablation).
	DisableFastPath bool
}

// Minimize computes the minimal target subset by greedy single-row
// elimination in canonical (ascending) order. A row r is removable when a
// homomorphism (conditions (2) and (3)) exists from the current rows into
// the current rows minus r; general homomorphisms are required because some
// shrinking steps must move several rows at once. Because row mappings form
// a finite Church–Rosser system the greedy order reaches the unique core,
// and the theory guarantees a condition-(1) row mapping from the full
// original row set onto that core, which Minimize recovers at the end.
func (t *Tableau) Minimize() *Minimization {
	return t.MinimizeOpt(Options{})
}

// MinimizeOpt is Minimize with tuning options; see Options.
func (t *Tableau) MinimizeOpt(opts Options) *Minimization {
	var stats Stats
	rows := make([]int, t.NumRows())
	for i := range rows {
		rows[i] = i
	}
	for {
		removed := false
		for k := 0; k < len(rows); k++ {
			candidate := rows[k]
			rest := make([]int, 0, len(rows)-1)
			for _, r := range rows {
				if r != candidate {
					rest = append(rest, r)
				}
			}
			if len(rest) == 0 {
				break
			}
			// Fast path: everything else pinned. Fallback: general fold.
			ok := false
			if !opts.DisableFastPath {
				_, ok = t.FindMapping(rows, rest)
				if ok {
					stats.PinnedRemovals++
				}
			}
			if !ok {
				_, ok = t.FindHom(rows, rest)
				if ok {
					stats.GeneralRemovals++
				}
			}
			if !ok {
				stats.FailedProbes++
				continue
			}
			rows = rest
			removed = true
			k--
		}
		if !removed {
			break
		}
	}
	sort.Ints(rows)
	all := make([]int, t.NumRows())
	for i := range all {
		all[i] = i
	}
	total, ok := t.FindMapping(all, rows)
	if !ok {
		panic("tableau: no pinned row mapping onto the minimal core — minimization bug")
	}
	return &Minimization{Tableau: t, Rows: rows, Mapping: total, Stats: stats}
}

// KeptNodes returns the node set retained by TR: sacred nodes occurring in
// some minimal row, plus non-sacred nodes occurring in at least two minimal
// rows.
func (mn *Minimization) KeptNodes() bitset.Set {
	t := mn.Tableau
	count := map[int]int{}
	for _, r := range mn.Rows {
		t.H.Edge(r).ForEach(func(c int) { count[c]++ })
	}
	var kept bitset.Set
	for c, n := range count {
		if t.Sacred.Contains(c) || n >= 2 {
			kept.Add(c)
		}
	}
	return kept
}

// Hypergraph assembles TR(H, X): the partial edges of the minimal rows
// restricted to the kept nodes. Per the paper, the result is always reduced;
// Hypergraph verifies that and panics otherwise (it would indicate a
// minimization bug, not a user error).
func (mn *Minimization) Hypergraph() *hypergraph.Hypergraph {
	t := mn.Tableau
	kept := mn.KeptNodes()
	edges := make([]bitset.Set, 0, len(mn.Rows))
	for _, r := range mn.Rows {
		edges = append(edges, t.H.Edge(r).And(kept))
	}
	out := t.H.Derive(kept, edges)
	if !out.IsReduced() {
		panic(fmt.Sprintf("tableau: TR produced an unreduced hypergraph %v — minimization bug", out))
	}
	return out
}

// Reduce runs the full tableau reduction of h with the given sacred nodes
// and returns the minimization (rows + mapping).
func Reduce(h *hypergraph.Hypergraph, sacred bitset.Set) *Minimization {
	return New(h, sacred).Minimize()
}

// String renders the reduced tableau in the style of the paper's Figure 3:
// the summary and the minimal rows, showing a special symbol only where it
// survives in the reduced tableau (symbols occurring once and not
// distinguished render as blanks, matching the paper's convention).
func (mn *Minimization) String() string {
	t := mn.Tableau
	nodes := t.H.NodeSet().Elems()
	kept := mn.KeptNodes()
	width := make([]int, len(nodes))
	name := make([]string, len(nodes))
	for i, c := range nodes {
		name[i] = t.H.NodeName(c)
		width[i] = len(name[i])
	}
	var b strings.Builder
	for i := range nodes {
		fmt.Fprintf(&b, "%-*s ", width[i], name[i])
	}
	b.WriteString("\n")
	for i, c := range nodes {
		s := ""
		if t.Sacred.Contains(c) {
			s = strings.ToLower(name[i])
		}
		fmt.Fprintf(&b, "%-*s ", width[i], s)
	}
	b.WriteString("  (summary)\n")
	for _, r := range mn.Rows {
		for i, c := range nodes {
			s := ""
			if t.H.Edge(r).Contains(c) && kept.Contains(c) {
				s = strings.ToLower(name[i])
			}
			fmt.Fprintf(&b, "%-*s ", width[i], s)
		}
		fmt.Fprintf(&b, "  (row %d)\n", r)
	}
	return b.String()
}

// TR returns the hypergraph TR(h, sacred): the canonical connection of the
// sacred nodes (Maier & Ullman §5 call this CC(X)).
func TR(h *hypergraph.Hypergraph, sacred bitset.Set) *hypergraph.Hypergraph {
	return Reduce(h, sacred).Hypergraph()
}

// String renders the tableau in the style of the paper's Figure 2: a summary
// line holding the distinguished symbols, then one line per row with the
// special symbols of its edge. Special symbols are the lower-cased node
// names; blanks (unique symbols) are left empty.
func (t *Tableau) String() string {
	nodes := t.H.NodeSet().Elems()
	width := make([]int, len(nodes))
	name := make([]string, len(nodes))
	for i, c := range nodes {
		name[i] = t.H.NodeName(c)
		width[i] = len(name[i])
	}
	var b strings.Builder
	// Header: column names.
	for i := range nodes {
		fmt.Fprintf(&b, "%-*s ", width[i], name[i])
	}
	b.WriteString("\n")
	// Summary: distinguished symbols.
	for i, c := range nodes {
		s := ""
		if t.Sacred.Contains(c) {
			s = strings.ToLower(name[i])
		}
		fmt.Fprintf(&b, "%-*s ", width[i], s)
	}
	b.WriteString("  (summary)\n")
	for r := 0; r < t.NumRows(); r++ {
		for i, c := range nodes {
			s := ""
			if t.H.Edge(r).Contains(c) {
				s = strings.ToLower(name[i])
			}
			fmt.Fprintf(&b, "%-*s ", width[i], s)
		}
		fmt.Fprintf(&b, "  (edge {%s})\n", strings.Join(t.H.EdgeNodes(r), " "))
	}
	return b.String()
}

// SpecialOccurrences returns how many rows contain node c's special symbol.
func (t *Tableau) SpecialOccurrences(c int) int { return t.occ[c] }

// IsDistinguished reports whether node c's special symbol is distinguished.
func (t *Tableau) IsDistinguished(c int) bool { return t.Sacred.Contains(c) }
