package tableau

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bitset"
	"repro/internal/gen"
	"repro/internal/gyo"
	"repro/internal/hypergraph"
)

func TestFig2TableauStructure(t *testing.T) {
	// Example 3.1: tableau for Fig. 1 with A and D sacred.
	h := hypergraph.Fig1()
	tab := New(h, h.MustSet("A", "D"))
	if tab.NumRows() != 4 {
		t.Fatalf("NumRows = %d", tab.NumRows())
	}
	occ := map[string]int{"A": 3, "B": 1, "C": 3, "D": 1, "E": 3, "F": 1}
	for name, want := range occ {
		id, _ := h.NodeID(name)
		if got := tab.SpecialOccurrences(id); got != want {
			t.Errorf("occurrences(%s) = %d, want %d", name, got, want)
		}
	}
	for name, want := range map[string]bool{"A": true, "D": true, "B": false, "C": false} {
		id, _ := h.NodeID(name)
		if got := tab.IsDistinguished(id); got != want {
			t.Errorf("distinguished(%s) = %v, want %v", name, got, want)
		}
	}
	s := tab.String()
	if !strings.Contains(s, "(summary)") || !strings.Contains(s, "{A B C}") {
		t.Fatalf("rendering missing pieces:\n%s", s)
	}
}

func TestFig3Example33(t *testing.T) {
	// Example 3.3: the minimal rows of Fig. 2 are rows 2 ({C,D,E}) and
	// 4 ({A,C,E}); TR(H, {A,D}) = {{C,D,E}, {A,C,E}}.
	h := hypergraph.Fig1()
	mn := Reduce(h, h.MustSet("A", "D"))
	if len(mn.Rows) != 2 || mn.Rows[0] != 1 || mn.Rows[1] != 3 {
		t.Fatalf("minimal rows = %v, want [1 3]", mn.Rows)
	}
	// "The desired row mapping h sends rows 1, 3, and 4 to 4, and 2 to 2."
	// (paper's 1-based indexing; ours is 0-based)
	want := RowMapping{3, 1, 3, 3}
	for i, img := range want {
		if mn.Mapping[i] != img {
			t.Fatalf("mapping = %v, want %v", mn.Mapping, want)
		}
	}
	tr := mn.Hypergraph()
	if !tr.EqualEdges(hypergraph.New([][]string{{"C", "D", "E"}, {"A", "C", "E"}})) {
		t.Fatalf("TR = %v", tr)
	}
	// Figure 3 rendering: the reduced tableau shows c, d, e in the first
	// minimal row and a, c, e in the second; B and F render blank.
	s := mn.String()
	if !strings.Contains(s, "(row 1)") || !strings.Contains(s, "(row 3)") {
		t.Fatalf("rendering:\n%s", s)
	}
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, "b") || strings.Contains(line, "f") {
			t.Fatalf("dropped symbols must render blank:\n%s", s)
		}
	}
}

func TestCyclicCounterexampleAfterTheorem35(t *testing.T) {
	// "let us take edges {A,B}, {A,C}, {B,C}, and {A,D}, with only D sacred.
	// Then the tableau reduction consists only of D, since all edges can be
	// mapped to {A,D}, yet all four edges remain when Graham reduction is
	// attempted."
	h := hypergraph.CyclicCounterexample()
	d := h.MustSet("D")
	tr := TR(h, d)
	if !tr.EqualEdges(hypergraph.New([][]string{{"D"}})) {
		t.Fatalf("TR = %v, want {{D}}", tr)
	}
	gr := gyo.Reduce(h, d).Hypergraph
	if !gr.EqualEdges(h) {
		t.Fatalf("GR = %v, want all four edges", gr)
	}
	if tr.EqualEdges(gr) {
		t.Fatal("Theorem 3.5 must fail on this cyclic hypergraph")
	}
}

func TestTriangleFoldsToOneRow(t *testing.T) {
	// With no sacred nodes, every tableau folds onto a single row — this is
	// the case that requires general (non-pinned) homomorphisms.
	h := hypergraph.Triangle()
	mn := Reduce(h, bitset.Set{})
	if len(mn.Rows) != 1 {
		t.Fatalf("minimal rows = %v, want a single row", mn.Rows)
	}
	tr := mn.Hypergraph()
	if tr.NumEdges() != 1 || !tr.Edge(0).IsEmpty() {
		t.Fatalf("TR(triangle, ∅) = %v, want one empty partial edge", tr)
	}
}

func TestEmptySacredAlwaysCollapses(t *testing.T) {
	for _, h := range []*hypergraph.Hypergraph{
		hypergraph.Fig1(), hypergraph.Fig5(), hypergraph.Triangle(),
		gen.PathGraph(5), gen.HyperRing(4),
	} {
		mn := Reduce(h, bitset.Set{})
		if len(mn.Rows) != 1 {
			t.Errorf("%v: TR(H, ∅) kept %d rows, want 1", h, len(mn.Rows))
		}
	}
}

func TestFig1SacredAC(t *testing.T) {
	// §3 remark: Fig. 1 with A and C sacred — renaming may exchange special
	// and nonspecial symbols; the reduction collapses to {{A,C}}.
	h := hypergraph.Fig1()
	tr := TR(h, h.MustSet("A", "C"))
	if !tr.EqualEdges(hypergraph.New([][]string{{"A", "C"}})) {
		t.Fatalf("TR(fig1, {A,C}) = %v, want {{A,C}}", tr)
	}
}

func TestExample51CanonicalConnection(t *testing.T) {
	// Example 5.1: H = Fig1 minus {A,C,E}; CC({A,C}) = {{A,C}}.
	h := hypergraph.Fig1MinusACE()
	tr := TR(h, h.MustSet("A", "C"))
	if !tr.EqualEdges(hypergraph.New([][]string{{"A", "C"}})) {
		t.Fatalf("CC({A,C}) = %v, want {{A,C}}", tr)
	}
}

func TestFig5AllEdgesInConnection(t *testing.T) {
	// Figure 5: CC({A,F}) must contain all four edges.
	h := hypergraph.Fig5()
	tr := TR(h, h.MustSet("A", "F"))
	if !tr.EqualEdges(h) {
		t.Fatalf("CC({A,F}) = %v, want all of %v", tr, h)
	}
}

// TestTheorem35OnCorpus: GR(H,X) = TR(H,X) for every acyclic hypergraph in
// the exhaustive small corpus and every sacred subset.
func TestTheorem35OnCorpus(t *testing.T) {
	for n := 1; n <= 4; n++ {
		for _, h := range gen.AllConnectedReduced(n) {
			if !gyo.IsAcyclic(h) {
				continue
			}
			ids := h.NodeSet().Elems()
			for mask := 0; mask < 1<<len(ids); mask++ {
				var x bitset.Set
				for b := range ids {
					if mask&(1<<b) != 0 {
						x.Add(ids[b])
					}
				}
				gr := gyo.Reduce(h, x).Hypergraph
				tr := TR(h, x)
				if !gr.EqualEdges(tr) {
					t.Fatalf("Theorem 3.5 violated on %v, X=%v:\nGR=%v\nTR=%v",
						h, h.NodeNames(x), gr, tr)
				}
			}
		}
	}
}

// TestTheorem35Random: the same on larger random acyclic hypergraphs.
func TestTheorem35Random(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 40; i++ {
		h := gen.RandomAcyclic(rng, gen.RandomSpec{Edges: 8, MinArity: 2, MaxArity: 4})
		x := gen.RandomNodeSubset(rng, h, 0.25)
		gr := gyo.Reduce(h, x).Hypergraph
		tr := TR(h, x)
		if !gr.EqualEdges(tr) {
			t.Fatalf("Theorem 3.5 violated on %v, X=%v:\nGR=%v\nTR=%v",
				h, h.NodeNames(x), gr, tr)
		}
	}
}

// TestLemma36NodeGenerated: TR(H, X) is a node-generated set of edges.
func TestLemma36NodeGenerated(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	check := func(h *hypergraph.Hypergraph, x bitset.Set) {
		tr := TR(h, x)
		ng := h.NodeGenerated(tr.CoveredNodes())
		if !tr.EqualEdges(ng) {
			t.Fatalf("Lemma 3.6 violated on %v, X=%v: TR=%v but node-generated=%v",
				h, h.NodeNames(x), tr, ng)
		}
	}
	check(hypergraph.Fig1(), hypergraph.Fig1().MustSet("A", "D"))
	check(hypergraph.CyclicCounterexample(), hypergraph.CyclicCounterexample().MustSet("D"))
	for i := 0; i < 30; i++ {
		h := gen.Random(rng, gen.RandomSpec{Nodes: 7, Edges: 5, MinArity: 2, MaxArity: 4})
		check(h, gen.RandomNodeSubset(rng, h, 0.3))
	}
}

// TestCorollary37: TR of an acyclic hypergraph is acyclic.
func TestCorollary37(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 30; i++ {
		h := gen.RandomAcyclic(rng, gen.RandomSpec{Edges: 7, MinArity: 2, MaxArity: 4})
		x := gen.RandomNodeSubset(rng, h, 0.3)
		if !gyo.IsAcyclic(TR(h, x)) {
			t.Fatalf("Corollary 3.7 violated on %v, X=%v", h, h.NodeNames(x))
		}
	}
}

// TestLemma38Monotone: X ⊆ Y implies TR(H,X) ⊆ TR(H,Y) edgewise.
func TestLemma38Monotone(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 30; i++ {
		h := gen.Random(rng, gen.RandomSpec{Nodes: 7, Edges: 5, MinArity: 2, MaxArity: 4})
		y := gen.RandomNodeSubset(rng, h, 0.5)
		x := y.And(gen.RandomNodeSubset(rng, h, 0.5))
		trX, trY := TR(h, x), TR(h, y)
		for _, e := range trX.Edges() {
			if trY.EdgeContaining(e) < 0 {
				t.Fatalf("Lemma 3.8 violated on %v: X=%v Y=%v, edge %v of TR(H,X) not within TR(H,Y)=%v",
					h, h.NodeNames(x), h.NodeNames(y), h.NodeNames(e), trY)
			}
		}
	}
}

// TestLemma39EliminatedNodes: if some edge E containing n maps to an edge
// without n, then n does not appear in TR(H,X).
func TestLemma39EliminatedNodes(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 30; i++ {
		h := gen.Random(rng, gen.RandomSpec{Nodes: 7, Edges: 5, MinArity: 2, MaxArity: 4})
		x := gen.RandomNodeSubset(rng, h, 0.3)
		mn := Reduce(h, x)
		trNodes := mn.Hypergraph().CoveredNodes()
		h.NodeSet().ForEach(func(n int) {
			for r := 0; r < h.NumEdges(); r++ {
				if h.Edge(r).Contains(n) && !h.Edge(mn.Mapping[r]).Contains(n) {
					if trNodes.Contains(n) {
						t.Fatalf("Lemma 3.9 violated on %v X=%v: node %s should be eliminated",
							h, h.NodeNames(x), h.NodeName(n))
					}
				}
			}
		})
	}
}

// TestLemma310ComponentExclusion: if Y is an articulation set and N a
// component of H - Y with X ∩ N = ∅, then TR(H, X) has no node of N.
func TestLemma310ComponentExclusion(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tested := 0
	for i := 0; i < 60 && tested < 25; i++ {
		h := gen.Random(rng, gen.RandomSpec{Nodes: 8, Edges: 6, MinArity: 2, MaxArity: 3})
		arts := h.ArticulationSets()
		if len(arts) == 0 {
			continue
		}
		y := arts[rng.Intn(len(arts))]
		comps := h.RemoveNodes(y).Components()
		if len(comps) < 2 {
			continue
		}
		n := comps[rng.Intn(len(comps))]
		// Sacred set: anything outside N.
		x := gen.RandomNodeSubset(rng, h, 0.4).AndNot(n)
		tr := TR(h, x)
		if tr.CoveredNodes().Intersects(n) {
			t.Fatalf("Lemma 3.10 violated on %v: Y=%v N=%v X=%v TR=%v",
				h, h.NodeNames(y), h.NodeNames(n), h.NodeNames(x), tr)
		}
		tested++
	}
	if tested < 10 {
		t.Fatalf("only %d configurations exercised; generator too weak", tested)
	}
}

func TestValidate(t *testing.T) {
	h := hypergraph.Fig1()
	tab := New(h, h.MustSet("A", "D"))
	domain := []int{0, 1, 2, 3}
	good := RowMapping{3, 1, 3, 3}
	if err := tab.Validate(good, domain); err != nil {
		t.Fatalf("paper's mapping rejected: %v", err)
	}
	// Mapping row 1 ({C,D,E}, sacred D) elsewhere must fail condition (3).
	bad := RowMapping{3, 3, 3, 3}
	if err := tab.Validate(bad, domain); err == nil {
		t.Fatal("mapping dropping distinguished d must be rejected")
	}
	// {0,1,3,3} maps rows 0,2 in valid agreement; it is a legal mapping.
	ok2 := RowMapping{0, 1, 3, 3}
	if err := tab.Validate(ok2, domain); err != nil {
		t.Fatalf("legal mapping rejected: %v", err)
	}
	// Sending row 0 ({A,B,C}) to row 2 ({A,E,F}) breaks condition (2) on
	// column C: C's rows {0,1,3} map to {2,1,3}, which neither agree on one
	// row nor all keep the symbol.
	bad2 := RowMapping{2, 1, 2, 3}
	if err := tab.Validate(bad2, domain); err == nil {
		t.Fatal("condition (2) violation on column C not caught")
	}
}

func TestValidateCondition2(t *testing.T) {
	// Two edges sharing node B, mapped to rows that "disagree" on column B.
	h := hypergraph.New([][]string{{"A", "B"}, {"B", "C"}, {"D", "E"}})
	tab := New(h, bitset.Set{})
	domain := []int{0, 1, 2}
	// Send row 0 to row 2 while leaving row 1 fixed: B's rows map to
	// rows 2 and 1, neither agreement form holds.
	bad := RowMapping{2, 1, 2}
	if err := tab.Validate(bad, domain); err == nil {
		t.Fatal("condition (2) violation not caught")
	}
}

func TestFindMappingRejectsImpossible(t *testing.T) {
	h := hypergraph.CyclicCounterexample()
	tab := New(h, h.MustSet("D"))
	// Target = all rows but the {A,D} row (index 3): impossible, D's row
	// can only map to a row containing D.
	if _, ok := tab.FindHom([]int{0, 1, 2, 3}, []int{0, 1, 2}); ok {
		t.Fatal("hom dropping the only D-row must not exist")
	}
}

func TestMinimizationIdempotent(t *testing.T) {
	h := hypergraph.Fig5()
	x := h.MustSet("A", "F")
	tr1 := TR(h, x)
	// Reducing the reduced hypergraph again with the same sacred set (now
	// using tr1's own universe) is a no-op.
	x2 := tr1.MustSet("A", "F")
	tr2 := TR(tr1, x2)
	if !tr1.EqualEdges(tr2) {
		t.Fatalf("TR not idempotent: %v then %v", tr1, tr2)
	}
}

func TestSacredOutsideUniverseIgnored(t *testing.T) {
	h := hypergraph.Triangle()
	var x bitset.Set
	x.Add(1000) // not a node of h
	mn := Reduce(h, x)
	if len(mn.Rows) != 1 {
		t.Fatalf("stray sacred bits must be ignored; rows = %v", mn.Rows)
	}
}
