package repro

import "repro/internal/dynamic"

type (
	// Workspace is the mutable hypergraph surface: a concurrency-safe
	// handle whose analyses are maintained under AddEdge / RemoveEdge /
	// RenameNode edits instead of recomputed from scratch — connected
	// components are tracked incrementally and only the components an edit
	// touches are re-analyzed. Snapshot materializes the current epoch as
	// an ordinary immutable Hypergraph; Analysis returns the epoch-bound
	// session handle. See internal/dynamic.
	Workspace = dynamic.Workspace
	// WorkspaceAnalysis is the epoch-bound analysis handle of a Workspace:
	// facets mirror the frozen Analysis session, but every derived facet
	// epoch-checks against the live workspace and reports *ErrStaleEpoch
	// once it has been edited past the handle. See internal/dynamic.
	WorkspaceAnalysis = dynamic.Analysis
	// WorkspaceOption configures a Workspace (see WithWorkspaceEngine).
	WorkspaceOption = dynamic.Option
)

type (
	// ErrStaleEpoch reports a facet call on a WorkspaceAnalysis whose
	// workspace has been edited since the handle was taken; Handle and
	// Current carry the two epochs. Match with errors.As and recover by
	// taking a fresh handle with Workspace.Analysis.
	ErrStaleEpoch = dynamic.ErrStaleEpoch
	// ErrUnknownEdge reports an edge id that does not name an alive edge
	// of a Workspace. Match with errors.As.
	ErrUnknownEdge = dynamic.ErrUnknownEdge
	// ErrNodeExists reports a Workspace.RenameNode target name that is
	// currently present in the workspace (departed names are released and
	// may be reused). Match with errors.As.
	ErrNodeExists = dynamic.ErrNodeExists
)

// NewWorkspace returns an empty mutable workspace at epoch 0:
//
//	ws := repro.NewWorkspace()
//	ws.AddEdge("A", "B", "C")
//	id, _ := ws.AddEdge("C", "D")
//	ws.Analysis().Verdict()      // incremental — only touched components re-analyze
//	ws.RemoveEdge(id)
//	h := ws.Snapshot()           // frozen *Hypergraph of the current epoch
func NewWorkspace(opts ...WorkspaceOption) *Workspace {
	return dynamic.New(opts...)
}

// NewWorkspaceFrom returns a workspace seeded with every edge of h (edge i
// of h becomes workspace edge id i), the migration entry point from the
// frozen surface. Empty edges are rejected.
func NewWorkspaceFrom(h *Hypergraph, opts ...WorkspaceOption) (*Workspace, error) {
	return dynamic.NewFrom(h, opts...)
}

// WithWorkspaceEngine routes the workspace's component re-analysis through
// e's component-granular memo: workspaces sharing an engine — including
// unrelated tenants whose schemas merely share a connected component — hit
// each other's warm entries and skip the search. Pair with
// engine.WithKeyedDigest when the tenants are untrusted.
func WithWorkspaceEngine(e *Engine) WorkspaceOption {
	return dynamic.WithEngine(e)
}

// WithWorkspaceParallelism makes the workspace settle dirty components with
// up to n concurrent workers (values < 1 mean GOMAXPROCS) and routes the
// epoch handles' Reduce and Eval facets through the parallel executors.
// Results are identical to the serial workspace — only wall-clock time
// changes. When the workspace also uses WithWorkspaceEngine, prefer sharing
// the engine's pool sizing (Engine WithWorkers) so the two layers do not
// oversubscribe the host.
func WithWorkspaceParallelism(n int) WorkspaceOption {
	return dynamic.WithParallelism(n)
}
