package repro

import (
	"errors"
	"testing"
)

// TestWorkspaceFacade exercises the mutable surface end to end through the
// root package: edits, incremental verdicts, epoch staleness, snapshots
// feeding the frozen API, and the engine-backed component memo.
func TestWorkspaceFacade(t *testing.T) {
	ws := NewWorkspace()
	if _, err := ws.AddEdge("A", "B", "C"); err != nil {
		t.Fatal(err)
	}
	if _, err := ws.AddEdge("C", "D", "E"); err != nil {
		t.Fatal(err)
	}
	id, err := ws.AddEdge("A", "E", "F")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ws.AddEdge("A", "C", "E"); err != nil {
		t.Fatal(err)
	}
	a := ws.Analysis()
	if !a.Verdict() {
		t.Fatal("Fig. 1 must be acyclic")
	}
	// The snapshot is a frozen hypergraph usable with the whole session API.
	if got, want := a.Verdict(), Analyze(ws.Snapshot()).Verdict(); got != want {
		t.Fatalf("incremental verdict %v != frozen %v", got, want)
	}
	if err := ws.RemoveEdge(id); err != nil {
		t.Fatal(err)
	}
	var stale *ErrStaleEpoch
	if _, err := a.JoinTree(); !errors.As(err, &stale) {
		t.Fatalf("stale handle must refuse: %v", err)
	}
	b := ws.Analysis()
	jt, err := b.JoinTree()
	if err != nil {
		t.Fatal(err)
	}
	if err := jt.Verify(); err != nil {
		t.Fatal(err)
	}

	// The engine-backed path: a second tenant with the same content hits
	// the first tenant's component entries.
	e := NewEngine(0)
	w1 := NewWorkspace(WithWorkspaceEngine(e))
	w1.AddEdge("X", "Y")
	w1.AddEdge("Y", "Z")
	w1.Analysis()
	base := e.Stats()
	w2, err := NewWorkspaceFrom(w1.Snapshot(), WithWorkspaceEngine(e))
	if err != nil {
		t.Fatal(err)
	}
	if !w2.Analysis().Verdict() {
		t.Fatal("chain must be acyclic")
	}
	after := e.Stats()
	if after.Hits <= base.Hits || after.Components != base.Components {
		t.Fatalf("tenant 2 must reuse tenant 1's component entries: %+v -> %+v", base, after)
	}
}
